//! Process-wide tuner instrumentation.
//!
//! The serving runtime's warm-start contract — "replaying a saved
//! artifact store performs **zero** tuner searches" — needs an observer
//! that cannot be fooled by a cache layer above it. These counters sit
//! inside the tuner entry points themselves: every call to
//! [`crate::tuner::tune_cpu_with_workers`] /
//! [`crate::tuner::tune_gpu_with_workers`] is an **invocation**, and an
//! invocation that profiles more than one candidate (a `Tuned` mode) is a
//! **search**. Replay modes (`CpuTuneMode::Fixed`, `GpuTuneMode::Generic`,
//! ...) build exactly one candidate, so they count as invocations but
//! never as searches.
//!
//! The counters are process-global and monotone (no reset), so concurrent
//! tuning from many threads only ever adds. Tests assert on *deltas*
//! around the work they drive and therefore must not share a test binary
//! with unrelated tuner traffic — `unit-serve` keeps its counter-asserting
//! tests in dedicated integration-test binaries for exactly this reason.

use std::sync::atomic::{AtomicU64, Ordering};

static INVOCATIONS: AtomicU64 = AtomicU64::new(0);
static SEARCHES: AtomicU64 = AtomicU64::new(0);
static CANDIDATES: AtomicU64 = AtomicU64::new(0);

/// Record one tuner entry-point call profiling `candidates` candidates.
pub(crate) fn record(candidates: usize) {
    INVOCATIONS.fetch_add(1, Ordering::Relaxed);
    CANDIDATES.fetch_add(candidates as u64, Ordering::Relaxed);
    if candidates > 1 {
        SEARCHES.fetch_add(1, Ordering::Relaxed);
    }
}

/// Total tuner entry-point calls since process start (any mode).
#[must_use]
pub fn tuner_invocations() -> u64 {
    INVOCATIONS.load(Ordering::Relaxed)
}

/// Total tuner calls that enumerated more than one candidate (actual
/// schedule searches) since process start.
#[must_use]
pub fn tuner_searches() -> u64 {
    SEARCHES.load(Ordering::Relaxed)
}

/// Total candidates profiled across all tuner calls since process start.
/// This is the tier contract's observable: a cold-tier compile profiles
/// strictly fewer candidates than a full-tier compile of the same
/// workload, and the difference is exactly the search budget the
/// background re-tune later spends.
#[must_use]
pub fn tuner_candidates() -> u64 {
    CANDIDATES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_candidate_counts_as_invocation_not_search() {
        let (i0, s0, c0) = (tuner_invocations(), tuner_searches(), tuner_candidates());
        record(1);
        record(4);
        // Other tests tune concurrently, so only lower bounds are stable.
        assert!(tuner_invocations() >= i0 + 2);
        assert!(tuner_searches() > s0);
        assert!(tuner_candidates() >= c0 + 5);
        assert!(tuner_invocations() >= tuner_searches());
    }
}
