//! GPU tuning: the Tensor Core optimization space of Section III-C /
//! Figure 6.
//!
//! Three knobs are enumerated and profiled on the GPU machine model:
//!
//! * the `p×p` outer-product accumulation window (register reuse vs.
//!   register pressure vs. block-level parallelism),
//! * **dimension fusion** of small H/W (saves redundant padding traffic at
//!   the cost of a rearrangement pass),
//! * **split-K**: splitting a deep reduction across blocks, synchronizing,
//!   and reducing the partial sums in shared memory — the occupancy rescue
//!   for batch-1 inference.
//!
//! Functionally, split-K is expressed as a *two-op decomposition* at the
//! DSL level ([`split_reduce_decompose`]): a partial op whose segment axis
//! is data-parallel, followed by a small reduction op. The interpreter runs
//! both to validate that the transformation preserves semantics.

use unit_dsl::{AxisKind, ComputeOp, DType, Expr, InitExpr, LinExpr, OpBuilder};
use unit_isa::TensorIntrinsic;
use unit_sim::{estimate_gpu, Estimate, GpuKernelDesc, GpuMachine};

use crate::inspector::Match;

/// Tuning effort, matching the stages of Figure 11.
///
/// `Hash`/`Eq` make the mode usable as (part of) a kernel-cache key — see
/// `unit_graph::compile::KernelCacheKey`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuTuneMode {
    /// Generic coarse/fine-grained parallelism only (`p = 2`).
    Generic,
    /// Plus H/W dimension fusion where applicable (`+FuseDim`).
    FuseDim,
    /// Plus split-K by 64 (`+SplitK`).
    SplitK,
    /// Full enumeration of `(p, fuse, split)` (`+Tune`).
    Tuned,
}

impl GpuTuneMode {
    /// Stable text encoding used by the on-disk artifact-store format
    /// (`unit-serve`). Part of the artifact file format: change it only
    /// together with the format version.
    #[must_use]
    pub fn encode(&self) -> &'static str {
        match self {
            GpuTuneMode::Generic => "generic",
            GpuTuneMode::FuseDim => "fusedim",
            GpuTuneMode::SplitK => "splitk",
            GpuTuneMode::Tuned => "tuned",
        }
    }

    /// Parse the [`GpuTuneMode::encode`] encoding.
    ///
    /// # Errors
    ///
    /// A human-readable description of the unknown mode.
    pub fn decode(s: &str) -> Result<GpuTuneMode, String> {
        match s {
            "generic" => Ok(GpuTuneMode::Generic),
            "fusedim" => Ok(GpuTuneMode::FuseDim),
            "splitk" => Ok(GpuTuneMode::SplitK),
            "tuned" => Ok(GpuTuneMode::Tuned),
            other => Err(format!("unknown gpu tune mode `{other}`")),
        }
    }
}

/// Convolution structure hints for GPU tuning: the implicit-GEMM view
/// erases the spatial/channel split, but dimension fusion and split-K are
/// defined in terms of it (Figure 6 / Section III-C).
#[derive(Debug, Clone, Copy)]
pub struct ConvGpuHint {
    /// Output height.
    pub oh: i64,
    /// Output width.
    pub ow: i64,
    /// Input channels (the dimension split-K segments, "split by 64").
    pub channels: i64,
}

/// A tuned GPU kernel.
#[derive(Debug, Clone)]
pub struct GpuTuneResult {
    /// The chosen kernel configuration.
    pub desc: GpuKernelDesc,
    /// Model estimate of the chosen candidate.
    pub estimate: Estimate,
    /// Description of the chosen configuration.
    pub chosen: String,
    /// `(candidate description, cycles)` for every profiled candidate.
    pub log: Vec<(String, f64)>,
}

/// Derive the matmul-shaped view of an operation from its mapping: the
/// operation axis mapped to the instruction's second data-parallel axis is
/// the column dimension; every other data-parallel axis contributes rows.
fn mnk_view(op: &ComputeOp, m: &Match, intrinsic: &TensorIntrinsic) -> (i64, i64, i64, usize) {
    let inst_dp: Vec<_> = intrinsic.semantics.axes.iter().map(|a| a.id).collect();
    let col_inst_axis = *inst_dp.last().expect("instruction has data-parallel axes");
    let col_op_axis = m
        .mapping
        .iter()
        .find(|(_, b)| *b == col_inst_axis)
        .map(|(a, _)| *a)
        .expect("mapping covers all instruction axes");
    let cols: i64 = op.extent(col_op_axis);
    let rows: i64 = op
        .axes
        .iter()
        .filter(|a| a.id != col_op_axis)
        .map(|a| a.extent)
        .product();
    let reduce: i64 = op.reduce_axes.iter().map(|a| a.extent).product();
    let spatial_axes = op.axes.iter().filter(|a| a.id != col_op_axis).count();
    (rows, cols, reduce, spatial_axes)
}

/// Build the kernel descriptor for one `(p, fuse, split)` configuration.
#[must_use]
pub fn build_desc(
    op: &ComputeOp,
    m: &Match,
    intrinsic: &TensorIntrinsic,
    p: i64,
    fuse_hw: bool,
    split_k: i64,
    hint: Option<ConvGpuHint>,
) -> GpuKernelDesc {
    let (rows, cols, reduce, spatial_axes) = mnk_view(op, m, intrinsic);
    let input_bytes: f64 = op
        .tensors
        .iter()
        .filter(|t| t.id != op.output)
        .map(|t| (t.len() * t.dtype.bytes()) as f64)
        .sum();
    let output_bytes = (op.output_decl().len() * op.output_decl().dtype.bytes()) as f64;
    // Dimension fusion: without it, every image row is padded to the WMMA
    // tile height separately (`OH * roundup(OW, 16)` rows); fusing H and W
    // pads once (`roundup(OH*OW, 16)`), saving the redundant padding rows
    // and their input traffic — the biggest win on small feature maps.
    let (rows_m, padding_bytes_saved, fuses) = match hint {
        Some(h) => {
            let unfused_rows = h.oh * ((h.ow + 15) / 16) * 16;
            let fused_rows = ((h.oh * h.ow + 15) / 16) * 16;
            if fuse_hw && h.oh > 1 {
                let frac = 1.0 - fused_rows as f64 / unfused_rows as f64;
                (fused_rows, input_bytes * frac, true)
            } else {
                (unfused_rows.max(rows), 0.0, false)
            }
        }
        None => (rows, 0.0, fuse_hw && spatial_axes >= 2),
    };
    GpuKernelDesc {
        macs: op.mac_count() as f64,
        tile_m: 16 * p,
        tile_n: 16 * p,
        reduce_k: reduce,
        rows_m,
        cols_n: cols,
        p,
        split_k,
        fuse_hw: fuses,
        padding_bytes_saved,
        input_bytes,
        output_bytes,
        wmma_latency: intrinsic.perf.latency_cycles,
        wmma_macs: intrinsic.perf.macs as f64,
    }
}

/// Tune a tensorized operation for a Tensor Core target (serial search).
#[must_use]
pub fn tune_gpu(
    op: &ComputeOp,
    m: &Match,
    intrinsic: &TensorIntrinsic,
    machine: &GpuMachine,
    mode: GpuTuneMode,
    hint: Option<ConvGpuHint>,
) -> GpuTuneResult {
    tune_gpu_with_workers(op, m, intrinsic, machine, mode, hint, 1)
}

/// Tune with up to `workers` threads profiling `(p, fuse, split)`
/// configurations concurrently (`0` = one per core). The log keeps the
/// enumeration order and the argmin breaks ties toward the earliest
/// configuration, so the result is identical to [`tune_gpu`] at any
/// worker count.
#[must_use]
pub fn tune_gpu_with_workers(
    op: &ComputeOp,
    m: &Match,
    intrinsic: &TensorIntrinsic,
    machine: &GpuMachine,
    mode: GpuTuneMode,
    hint: Option<ConvGpuHint>,
    workers: usize,
) -> GpuTuneResult {
    let (_, _, reduce, _) = mnk_view(op, m, intrinsic);
    // "We split the reduction dimension K by 64": segments of 64 channels.
    let default_split = hint
        .map_or((reduce / 64).max(1), |h| (h.channels / 64).max(1))
        .min(32);
    let configs: Vec<(i64, bool, i64)> = match mode {
        GpuTuneMode::Generic => vec![(2, false, 1)],
        GpuTuneMode::FuseDim => vec![(2, true, 1)],
        GpuTuneMode::SplitK => vec![(2, true, default_split)],
        GpuTuneMode::Tuned => {
            let mut out = Vec::new();
            for p in [1i64, 2, 4] {
                for fuse in [false, true] {
                    for split in [1i64, 2, 4, 8, 16, default_split] {
                        let split = split.min(reduce.max(1));
                        if !out.contains(&(p, fuse, split)) {
                            out.push((p, fuse, split));
                        }
                    }
                }
            }
            out
        }
    };
    crate::tuner::stats::record(configs.len());

    let profiled =
        crate::tuner::parallel::parallel_map(&configs, workers, |_, &(p, fuse, split)| {
            let desc = build_desc(op, m, intrinsic, p, fuse, split, hint);
            let est = estimate_gpu(&desc, machine);
            (desc, est)
        });

    let mut log = Vec::new();
    let mut best: Option<(GpuKernelDesc, Estimate, String)> = None;
    for ((p, fuse, split), (desc, est)) in configs.iter().zip(profiled) {
        let name = format!("p={p},fuse={fuse},splitK={split}");
        log.push((name.clone(), est.cycles));
        // Strict `<`: ties go to the earliest configuration, as in the
        // serial loop.
        let better = best.as_ref().is_none_or(|(_, b, _)| est.cycles < b.cycles);
        if better {
            best = Some((desc, est, name));
        }
    }
    let (desc, estimate, chosen) = best.expect("at least one configuration profiled");
    GpuTuneResult {
        desc,
        estimate,
        chosen,
        log,
    }
}

/// Decompose a sum-reduction op into (partial, combine) for split-K:
/// the chosen reduction axis is split into `segments`, the segment index
/// becomes a *data-parallel* axis of the partial op, and a second op sums
/// the partials. Semantically equivalent to the original (validated by the
/// interpreter in tests).
///
/// # Panics
///
/// Panics if `axis` is not a reduction axis of `op`, if `segments` does not
/// divide its extent, or if the op does not sum-reduce.
#[must_use]
pub fn split_reduce_decompose(
    op: &ComputeOp,
    axis: unit_dsl::AxisId,
    segments: i64,
) -> (ComputeOp, ComputeOp) {
    assert_eq!(
        op.reduce_op,
        unit_dsl::ReduceOp::Sum,
        "split-K requires a sum reduction"
    );
    let target = op
        .reduce_axes
        .iter()
        .find(|a| a.id == axis)
        .unwrap_or_else(|| panic!("{axis} is not a reduction axis of {}", op.name))
        .clone();
    assert!(
        target.extent % segments == 0,
        "segments {segments} must divide the reduction extent {}",
        target.extent
    );
    assert!(
        matches!(op.init, InitExpr::Identity),
        "split-K decomposition expects an identity-initialized reduction"
    );
    let seg_len = target.extent / segments;

    // --- Partial op: segment axis is data-parallel. ---
    let mut pb = OpBuilder::new(format!("{}_partial", op.name));
    // Re-declare the input tensors in the same order.
    for t in &op.tensors {
        if t.id != op.output {
            pb.tensor(t.name.clone(), &t.shape, t.dtype);
        }
    }
    // Axes: original data-parallel axes, then the segment axis (dp), then
    // the original reduce axes with the target shrunk to seg_len.
    let mut axis_subst: std::collections::BTreeMap<unit_dsl::AxisId, LinExpr> =
        std::collections::BTreeMap::new();
    let mut dp_handles = Vec::new();
    for a in &op.axes {
        let h = pb.axis(a.name.clone(), a.extent);
        axis_subst.insert(a.id, LinExpr::from(h));
        dp_handles.push(h);
    }
    let seg = pb.axis("seg", segments);
    for a in &op.reduce_axes {
        if a.id == target.id {
            let inner = pb.reduce_axis(format!("{}_i", a.name), seg_len);
            // original = seg * seg_len + inner
            axis_subst.insert(a.id, LinExpr::from(seg) * seg_len + LinExpr::from(inner));
        } else {
            let h = pb.reduce_axis(a.name.clone(), a.extent);
            axis_subst.insert(a.id, LinExpr::from(h));
        }
    }
    let update = op.update.map_indices(&|ix| ix.substitute_all(&axis_subst));
    // Output: original dp dims plus the segment dim appended.
    let mut out_idx: Vec<LinExpr> = dp_handles.iter().map(|h| LinExpr::from(*h)).collect();
    out_idx.push(LinExpr::from(seg));
    let partial = pb.compute(
        format!("{}_partials", op.output_decl().name),
        op.output_decl().dtype,
        out_idx,
        InitExpr::Identity,
        update,
    );

    // --- Combine op: sum over the segment axis. ---
    let mut cb = OpBuilder::new(format!("{}_combine", op.name));
    let mut pshape: Vec<i64> = op.output_decl().shape.clone();
    pshape.push(segments);
    let partials = cb.tensor("partials", &pshape, op.output_decl().dtype);
    let mut chandles = Vec::new();
    for a in &op.axes {
        chandles.push(cb.axis(a.name.clone(), a.extent));
    }
    let cseg = cb.reduce_axis("seg", segments);
    let mut cidx: Vec<LinExpr> = chandles.iter().map(|h| LinExpr::from(*h)).collect();
    cidx.push(LinExpr::from(cseg));
    let celem: Expr = cb.load(partials, cidx);
    let combine = cb.compute(
        op.output_decl().name.clone(),
        op.output_decl().dtype,
        chandles.iter().map(|h| LinExpr::from(*h)).collect(),
        InitExpr::Identity,
        celem,
    );
    let _ = DType::I32;
    let _ = AxisKind::Reduce;
    (partial, combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspector::inspect;
    use unit_dsl::builder::matmul_f16;
    use unit_interp::{alloc_op_buffers, random_fill, run_reference};
    use unit_isa::registry;

    fn v100() -> GpuMachine {
        crate::pipeline::Target::nvidia_tensor_core()
            .gpu
            .expect("GPU target")
    }

    fn setup(n: i64, m_: i64, k: i64) -> (ComputeOp, Match, TensorIntrinsic) {
        let op = matmul_f16(n, m_, k);
        let intrin = registry::by_name("llvm.nvvm.wmma.m16n16k16.mma.row.row.f32.f32").unwrap();
        let m = inspect(&intrin, &op).unwrap();
        (op, m, intrin)
    }

    #[test]
    fn split_k_wins_on_under_occupied_layers() {
        // 49 rows x 512 cols x 2048 reduce: few blocks without split-K.
        let (op, m, intrin) = setup(48, 512, 2048);
        let machine = v100();
        let generic = tune_gpu(&op, &m, &intrin, &machine, GpuTuneMode::Generic, None);
        let split = tune_gpu(&op, &m, &intrin, &machine, GpuTuneMode::SplitK, None);
        assert!(
            split.estimate.cycles < generic.estimate.cycles,
            "split-K {} must beat generic {}",
            split.estimate.cycles,
            generic.estimate.cycles
        );
    }

    #[test]
    fn tuned_never_loses_to_fixed_stages() {
        let (op, m, intrin) = setup(112, 256, 1024);
        let machine = v100();
        let stages = [
            GpuTuneMode::Generic,
            GpuTuneMode::FuseDim,
            GpuTuneMode::SplitK,
        ];
        let tuned = tune_gpu(&op, &m, &intrin, &machine, GpuTuneMode::Tuned, None);
        for s in stages {
            let r = tune_gpu(&op, &m, &intrin, &machine, s, None);
            assert!(
                tuned.estimate.cycles <= r.estimate.cycles,
                "stage {s:?} beat Tuned"
            );
        }
        assert!(tuned.log.len() > 10);
    }

    #[test]
    fn parallel_gpu_search_is_bit_identical_to_serial() {
        let (op, m, intrin) = setup(112, 256, 1024);
        let machine = v100();
        let serial = tune_gpu(&op, &m, &intrin, &machine, GpuTuneMode::Tuned, None);
        for workers in [2, 4, 8] {
            let par = tune_gpu_with_workers(
                &op,
                &m,
                &intrin,
                &machine,
                GpuTuneMode::Tuned,
                None,
                workers,
            );
            assert_eq!(par.chosen, serial.chosen, "{workers} workers");
            assert_eq!(par.estimate.cycles, serial.estimate.cycles);
            assert_eq!(par.log, serial.log);
        }
    }

    #[test]
    fn split_reduce_decomposition_preserves_semantics() {
        let op = unit_dsl::builder::matmul_u8i8(8, 12, 32);
        let k_axis = op.reduce_axes[0].id;
        let (partial, combine) = split_reduce_decompose(&op, k_axis, 4);
        assert_eq!(partial.axes.len(), 3); // i, j, seg
        assert_eq!(partial.output_decl().shape, vec![8, 12, 4]);

        // Run: reference(op) vs partial-then-combine.
        let mut direct = alloc_op_buffers(&op);
        random_fill(&mut direct, 31);
        run_reference(&op, &mut direct).unwrap();

        let mut pb = alloc_op_buffers(&partial);
        random_fill(&mut pb, 31); // same seed: inputs identical (same shapes/dtypes order)
        run_reference(&partial, &mut pb).unwrap();
        let mut cb = alloc_op_buffers(&combine);
        cb[0] = pb[partial.output.0 as usize].clone();
        run_reference(&combine, &mut cb).unwrap();

        assert_eq!(direct[op.output.0 as usize], cb[combine.output.0 as usize]);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn split_reduce_requires_divisibility() {
        let op = unit_dsl::builder::matmul_u8i8(8, 12, 30);
        let k_axis = op.reduce_axes[0].id;
        let _ = split_reduce_decompose(&op, k_axis, 4);
    }
}
