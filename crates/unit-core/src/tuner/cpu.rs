//! CPU tuning: the two-breaking-point search of Section III-C / Figure 7.
//!
//! The data-parallel loop nest is divided by two breaking points into three
//! regions: loops before the first point are **fused and parallelized**,
//! loops between the points run **serially**, and loops after the second
//! point are **reordered below the innermost reduction loop and unrolled**
//! (so their independent accumulators hide the tensorized instruction's
//! RAW latency). A breaking point is parameterized by a loop level plus a
//! tiling factor; candidates are profiled on the machine model and the best
//! is kept.
//!
//! The enumeration order starts from the pair the paper found optimal for
//! more than half the kernels (fused bound < 3000, unroll < 8), so the
//! "candidates-to-optimum" statistic of Section VI-B can be reproduced.

use unit_dsl::ComputeOp;
use unit_isa::TensorIntrinsic;
use unit_sim::{estimate_cpu, CpuMachine, Estimate};
use unit_tir::{LoopKind, TirFunc, VarId};

use crate::error::CompileError;
use crate::inspector::Match;
use crate::rewriter::{build_tensorized_schedule, finalize};
use crate::tuner::parallel::parallel_map;

/// Tuning effort, matching the stages of Figure 10.
///
/// `Hash`/`Eq` cover every field, so a mode is usable as (part of) a
/// kernel-cache key without collapsing distinct search budgets — see
/// `unit_graph::compile::KernelCacheKey`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuTuneMode {
    /// Fuse and parallelize outer loops only (the `Parallel` series).
    ParallelOnly,
    /// Parallelize and unroll with the default pair (the `+Unroll` series).
    ParallelUnroll,
    /// Search the breaking-point space (the `+Tune` series).
    Tuned {
        /// Number of `(parallel bound, unroll budget)` pairs to profile.
        max_pairs: usize,
    },
    /// One fixed breaking-point pair, no search. Used to model the fixed
    /// expert schedules of vendor libraries and manual TVM schedules, and
    /// by the serving runtime to **replay** a previously searched choice
    /// from a persisted artifact store without re-searching.
    Fixed {
        /// Parallel fusion bound.
        par: i64,
        /// Unroll budget.
        unroll: i64,
    },
}

impl CpuTuneMode {
    /// Stable text encoding used by the on-disk artifact-store format
    /// (`unit-serve`). The encoding is part of the artifact file format
    /// and must only change together with its version number.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            CpuTuneMode::ParallelOnly => "parallel-only".to_string(),
            CpuTuneMode::ParallelUnroll => "parallel-unroll".to_string(),
            CpuTuneMode::Tuned { max_pairs } => format!("tuned:{max_pairs}"),
            CpuTuneMode::Fixed { par, unroll } => format!("fixed:{par}:{unroll}"),
        }
    }

    /// Parse the [`CpuTuneMode::encode`] encoding.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed field.
    pub fn decode(s: &str) -> Result<CpuTuneMode, String> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or_default();
        let arg = |p: Option<&str>, what: &str| -> Result<i64, String> {
            p.ok_or_else(|| format!("cpu mode `{s}`: missing {what}"))?
                .parse::<i64>()
                .map_err(|e| format!("cpu mode `{s}`: bad {what}: {e}"))
        };
        let mode = match head {
            "parallel-only" => CpuTuneMode::ParallelOnly,
            "parallel-unroll" => CpuTuneMode::ParallelUnroll,
            "tuned" => {
                let n = arg(parts.next(), "max_pairs")?;
                if n < 1 {
                    return Err(format!("cpu mode `{s}`: max_pairs must be >= 1"));
                }
                CpuTuneMode::Tuned {
                    max_pairs: n as usize,
                }
            }
            "fixed" => CpuTuneMode::Fixed {
                par: arg(parts.next(), "par")?,
                unroll: arg(parts.next(), "unroll")?,
            },
            other => return Err(format!("unknown cpu tune mode `{other}`")),
        };
        if parts.next().is_some() {
            return Err(format!("cpu mode `{s}`: trailing fields"));
        }
        Ok(mode)
    }
}

/// A tuned CPU kernel.
#[derive(Debug, Clone)]
pub struct CpuTuneResult {
    /// The tensorized, scheduled function.
    pub func: TirFunc,
    /// Model estimate of the chosen candidate.
    pub estimate: Estimate,
    /// Description of the chosen breaking points.
    pub chosen: String,
    /// The winning `(parallel bound, unroll budget)` pair as data:
    /// re-tuning with `CpuTuneMode::Fixed` at this pair rebuilds the
    /// identical kernel without searching (the artifact-store replay
    /// path).
    pub chosen_pair: (i64, i64),
    /// `(candidate description, cycles)` for every profiled candidate.
    pub log: Vec<(String, f64)>,
}

/// The candidate enumeration order: the best-prior pair first, mirroring
/// the paper's observation that most kernels are optimal at the first pair.
/// On our machine model the best default unroll is 16 (the RAW-hazard
/// model rewards `latency x ports = 10` chains), where the paper's
/// Cascade Lake measurements favored 8 — recorded in `EXPERIMENTS.md`.
#[must_use]
pub fn candidate_pairs() -> Vec<(i64, i64)> {
    vec![
        (3000, 16),
        (3000, 8),
        (3000, 4),
        (3000, 32),
        (1500, 8),
        (6000, 8),
        (1500, 16),
        (6000, 16),
        (3000, 2),
        (1500, 4),
        (6000, 32),
        (500, 8),
        (12_000, 8),
        (1500, 32),
        (6000, 4),
        (500, 16),
    ]
}

/// Build one candidate: parallel bound `par_target`, unroll budget
/// `unroll_budget` (1 = no unrolling).
fn build_candidate(
    op: &ComputeOp,
    m: &Match,
    intrinsic: &TensorIntrinsic,
    par_target: i64,
    unroll_budget: i64,
    name: &str,
) -> Result<TirFunc, CompileError> {
    let mut ts = build_tensorized_schedule(op, m, intrinsic)?;
    let s = &mut ts.schedule;
    let sched_err = |e: unit_tir::ScheduleError| CompileError::Schedule(e.to_string());

    // --- Second breaking point: unroll the innermost data-parallel loops
    //     below the reduction (independent accumulation chains). ---
    let mut unrolled: Vec<VarId> = Vec::new();
    if unroll_budget > 1 {
        let mut acc = 1i64;
        let mut remaining_dp = ts.outer_dp.clone();
        while let Some(v) = remaining_dp.pop() {
            let ext = s.var(v).extent;
            if acc * ext <= unroll_budget {
                unrolled.insert(0, v);
                acc *= ext;
                if acc == unroll_budget {
                    break;
                }
            } else {
                let need = unroll_budget / acc;
                if need > 1 {
                    // Prefer a clean divisor close to the budget; fall back
                    // to an imperfect split, whose residue guard the cost
                    // model charges on the hot path — the effect behind
                    // workloads #1/#4 of Figure 10 ("output shapes can
                    // neither be perfectly tiled nor fully unrolled").
                    let mut best_div = 1;
                    for d in 2..=need {
                        if ext % d == 0 {
                            best_div = d;
                        }
                    }
                    let factor = if best_div * 2 > need { best_div } else { need };
                    if factor > 1 {
                        let (_outer, inner) = s.split(v, factor).map_err(sched_err)?;
                        unrolled.insert(0, inner);
                    }
                }
                break;
            }
        }
    }

    // --- First breaking point: fuse leading data-parallel loops until the
    //     fused extent reaches the parallel bound, then parallelize. ---
    let tensorized: Vec<VarId> = ts.loop_map.iter().map(|(v, _)| *v).collect();
    let mut front: Vec<VarId> = s
        .leaves()
        .into_iter()
        .filter(|v| {
            s.var(*v).class == unit_tir::IterClass::DataParallel
                && !unrolled.contains(v)
                && !tensorized.contains(v)
        })
        .collect();
    // Only the leading outer dp loops (before any reduce loop) participate.
    let mut fused = match front.first() {
        Some(first) => *first,
        None => {
            // Everything data-parallel was unrolled; nothing to parallelize.
            return finalize_with(&mut ts, &unrolled, None, name);
        }
    };
    front.remove(0);
    while s.var(fused).extent < par_target && !front.is_empty() {
        let next = front.remove(0);
        // Fusion requires adjacency; bring `next` right after `fused`.
        s.reorder(&[fused, next]).map_err(sched_err)?;
        // `reorder` keeps positions; ensure adjacency by full order fix-up:
        let mut order = s.leaves();
        let fp = order
            .iter()
            .position(|v| *v == fused)
            .expect("fused is a leaf");
        order.retain(|v| *v != next);
        order.insert(fp + 1, next);
        s.reorder(&order).map_err(sched_err)?;
        fused = s.fuse(fused, next).map_err(sched_err)?;
    }
    finalize_with(&mut ts, &unrolled, Some(fused), name)
}

/// Apply the final loop order and annotations, then lower + tensorize.
fn finalize_with(
    ts: &mut crate::rewriter::TensorizedSchedule,
    unrolled: &[VarId],
    parallel: Option<VarId>,
    name: &str,
) -> Result<TirFunc, CompileError> {
    let s = &mut ts.schedule;
    let sched_err = |e: unit_tir::ScheduleError| CompileError::Schedule(e.to_string());

    // Final order: [parallel, serial dp, outer reduce, unrolled dp,
    // tensorized tiles].
    let tensorized: Vec<VarId> = ts.loop_map.iter().map(|(v, _)| *v).collect();
    let leaves = s.leaves();
    let mut order: Vec<VarId> = Vec::new();
    if let Some(p) = parallel {
        order.push(p);
    }
    for v in &leaves {
        if Some(*v) != parallel
            && !unrolled.contains(v)
            && !tensorized.contains(v)
            && s.var(*v).class == unit_tir::IterClass::DataParallel
        {
            order.push(*v);
        }
    }
    for v in &leaves {
        if s.var(*v).class == unit_tir::IterClass::Reduce && !tensorized.contains(v) {
            order.push(*v);
        }
    }
    order.extend(unrolled.iter().copied());
    order.extend(tensorized.iter().copied());
    s.reorder(&order).map_err(sched_err)?;

    if let Some(p) = parallel {
        s.annotate(p, LoopKind::Parallel).map_err(sched_err)?;
    }
    for v in unrolled {
        s.annotate(*v, LoopKind::Unrolled).map_err(sched_err)?;
    }
    finalize(ts, name)
}

/// Tune a tensorized operation for a CPU target (serial search).
///
/// # Errors
///
/// Propagates schedule/lowering/tensorization failures (which indicate
/// pipeline bugs rather than user errors).
pub fn tune_cpu(
    op: &ComputeOp,
    m: &Match,
    intrinsic: &TensorIntrinsic,
    machine: &CpuMachine,
    mode: CpuTuneMode,
) -> Result<CpuTuneResult, CompileError> {
    tune_cpu_with_workers(op, m, intrinsic, machine, mode, 1)
}

/// Tune with up to `workers` threads building and profiling candidates
/// concurrently (`0` = one per core). Every candidate is still profiled,
/// the log keeps the enumeration order, and the argmin breaks ties toward
/// the earliest candidate — so the chosen pair, the estimate and the
/// candidates-to-optimum statistic are identical to [`tune_cpu`] at any
/// worker count.
///
/// # Errors
///
/// Propagates schedule/lowering/tensorization failures (which indicate
/// pipeline bugs rather than user errors).
pub fn tune_cpu_with_workers(
    op: &ComputeOp,
    m: &Match,
    intrinsic: &TensorIntrinsic,
    machine: &CpuMachine,
    mode: CpuTuneMode,
    workers: usize,
) -> Result<CpuTuneResult, CompileError> {
    let pairs: Vec<(i64, i64)> = match mode {
        CpuTuneMode::ParallelOnly => vec![(3000, 1)],
        CpuTuneMode::ParallelUnroll => vec![(3000, 8)],
        CpuTuneMode::Tuned { max_pairs } => candidate_pairs()
            .into_iter()
            .take(max_pairs.max(1))
            .collect(),
        CpuTuneMode::Fixed { par, unroll } => vec![(par, unroll)],
    };
    crate::tuner::stats::record(pairs.len());

    let profiled = parallel_map(&pairs, workers, |_, &(par, unroll)| {
        let func = build_candidate(op, m, intrinsic, par, unroll, &op.name)?;
        let est = estimate_cpu(&func, machine);
        Ok::<(TirFunc, Estimate), CompileError>((func, est))
    });

    let mut log = Vec::new();
    let mut best: Option<(TirFunc, Estimate, String, (i64, i64))> = None;
    for ((par, unroll), outcome) in pairs.iter().zip(profiled) {
        let (func, est) = outcome?;
        let desc = format!("parallel<{par},unroll<{unroll}");
        log.push((desc.clone(), est.cycles));
        // Strict `<`: the earliest optimal candidate wins, exactly as in
        // the serial loop.
        let better = best
            .as_ref()
            .is_none_or(|(_, b, _, _)| est.cycles < b.cycles);
        if better {
            best = Some((func, est, desc, (*par, *unroll)));
        }
    }
    let (func, estimate, chosen, chosen_pair) =
        best.expect("at least one candidate is always profiled");
    Ok(CpuTuneResult {
        func,
        estimate,
        chosen,
        chosen_pair,
        log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspector::inspect;
    use unit_dsl::builder::conv2d_hwc;
    use unit_isa::registry;

    fn x86_machine() -> CpuMachine {
        crate::pipeline::Target::x86_avx512_vnni()
            .cpu
            .expect("CPU target")
    }

    fn setup() -> (ComputeOp, Match, TensorIntrinsic) {
        let op = conv2d_hwc(16, 16, 64, 128, 3, 3);
        let intrin = registry::by_name("llvm.x86.avx512.vpdpbusd.512").unwrap();
        let m = inspect(&intrin, &op).unwrap();
        (op, m, intrin)
    }

    #[test]
    fn unroll_beats_parallel_only() {
        let (op, m, intrin) = setup();
        let machine = x86_machine();
        let par = tune_cpu(&op, &m, &intrin, &machine, CpuTuneMode::ParallelOnly).unwrap();
        let unr = tune_cpu(&op, &m, &intrin, &machine, CpuTuneMode::ParallelUnroll).unwrap();
        assert!(
            unr.estimate.cycles < par.estimate.cycles,
            "+Unroll ({}) must beat Parallel ({})",
            unr.estimate.cycles,
            par.estimate.cycles
        );
    }

    #[test]
    fn tuned_is_at_least_as_good_as_the_default_pair() {
        let (op, m, intrin) = setup();
        let machine = x86_machine();
        let unr = tune_cpu(&op, &m, &intrin, &machine, CpuTuneMode::ParallelUnroll).unwrap();
        let tuned = tune_cpu(
            &op,
            &m,
            &intrin,
            &machine,
            CpuTuneMode::Tuned { max_pairs: 16 },
        )
        .unwrap();
        assert!(tuned.estimate.cycles <= unr.estimate.cycles);
        assert_eq!(tuned.log.len(), 16);
    }

    #[test]
    fn tuned_candidates_remain_correct() {
        use unit_interp::{alloc_buffers, random_fill, run, run_reference};
        let op = conv2d_hwc(10, 10, 16, 32, 3, 3);
        let intrin = registry::by_name("llvm.x86.avx512.vpdpbusd.512").unwrap();
        let m = inspect(&intrin, &op).unwrap();
        let machine = x86_machine();
        for mode in [
            CpuTuneMode::ParallelOnly,
            CpuTuneMode::ParallelUnroll,
            CpuTuneMode::Tuned { max_pairs: 6 },
        ] {
            let tuned = tune_cpu(&op, &m, &intrin, &machine, mode).unwrap();
            let mut bufs = alloc_buffers(&tuned.func);
            random_fill(&mut bufs, 17);
            let mut reference = bufs.clone();
            run(&tuned.func, &mut bufs).unwrap();
            run_reference(&op, &mut reference).unwrap();
            assert_eq!(
                bufs[op.output.0 as usize], reference[op.output.0 as usize],
                "mode {mode:?} produced a wrong kernel"
            );
        }
    }

    #[test]
    fn parallel_search_is_bit_identical_to_serial() {
        let (op, m, intrin) = setup();
        let machine = x86_machine();
        let mode = CpuTuneMode::Tuned { max_pairs: 8 };
        let serial = tune_cpu(&op, &m, &intrin, &machine, mode).unwrap();
        for workers in [2, 4, 8] {
            let par = tune_cpu_with_workers(&op, &m, &intrin, &machine, mode, workers).unwrap();
            assert_eq!(par.chosen, serial.chosen, "{workers} workers");
            assert_eq!(par.estimate.cycles, serial.estimate.cycles);
            assert_eq!(par.log, serial.log, "log order must be enumeration order");
        }
    }

    #[test]
    fn default_pair_is_first_in_the_enumeration() {
        assert_eq!(candidate_pairs()[0], (3000, 16));
        assert!(candidate_pairs().contains(&(3000, 8)));
    }
}
