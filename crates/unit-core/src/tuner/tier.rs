//! Tuning tiers: how much search budget a compile is allowed to spend.
//!
//! The serving runtime compiles cold `(model, target)` pairs at the
//! **cold** tier — a cheap, barely-searching config derived from the
//! engine's full config by [`crate::pipeline::TuningConfig::at_tier`] —
//! responds immediately, and re-tunes at the **full** tier in the
//! background before hot-swapping the kernel. The tier is persisted next
//! to every artifact entry so replicas know whether a decision is final
//! (`full`) or an upgrade is still owed (`cold`).
//!
//! Ordering matters: `Cold < Full`, so "keep the higher tier" merge
//! policies can compare tiers directly.

/// The tuning effort tier a kernel was compiled at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum TuneTier {
    /// Cheap first-response tier (bounded search; serve now, upgrade
    /// later).
    Cold,
    /// The engine's full search budget (the terminal tier; nothing left
    /// to upgrade).
    #[default]
    Full,
}

impl TuneTier {
    /// Stable text encoding (`cold` / `full`), persisted by the
    /// `unit-serve` artifact and journal formats — it must round-trip
    /// exactly and may only change with those format versions.
    #[must_use]
    pub fn encode(self) -> &'static str {
        match self {
            TuneTier::Cold => "cold",
            TuneTier::Full => "full",
        }
    }

    /// Parse the [`TuneTier::encode`] encoding.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed value.
    pub fn decode(s: &str) -> Result<TuneTier, String> {
        match s {
            "cold" => Ok(TuneTier::Cold),
            "full" => Ok(TuneTier::Full),
            other => Err(format!("unknown tune tier `{other}`")),
        }
    }
}

impl std::fmt::Display for TuneTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trips() {
        for tier in [TuneTier::Cold, TuneTier::Full] {
            assert_eq!(TuneTier::decode(tier.encode()), Ok(tier));
        }
        assert!(TuneTier::decode("warm").is_err());
    }

    #[test]
    fn cold_orders_below_full() {
        assert!(TuneTier::Cold < TuneTier::Full);
        assert_eq!(TuneTier::default(), TuneTier::Full);
    }
}
