//! Worker-count-aware parallel mapping for candidate evaluation.
//!
//! The tuning searches of Section III-C are embarrassingly parallel: every
//! breaking-point candidate (CPU) and every `(p, fuse, split)` configuration
//! (GPU) is built and profiled independently, and only the final argmin
//! couples them. This module provides the one primitive both tuners share:
//! [`parallel_map`], an order-preserving map over a candidate list executed
//! by a bounded pool of scoped threads.
//!
//! Determinism is the contract that makes the parallel tuner drop-in: the
//! result vector is always in input order, so the serial "first optimal
//! pair" tie-break (and with it the candidates-to-optimum statistic of
//! Section VI-B) is reproduced bit-for-bit at any worker count. The
//! differential suite (`tests/differential_tuning.rs`) enforces this.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Resolve a requested worker count: `0` means "one per available core".
/// The result is clamped to at least 1 and at most the item count handed
/// to [`parallel_map`] (spawning more threads than candidates buys
/// nothing).
#[must_use]
pub fn effective_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    }
}

/// Chunk size for claiming work: coarse enough to amortize the atomic
/// claim, fine enough (4 chunks per worker) that an expensive candidate
/// doesn't leave the other workers idle at the tail.
#[must_use]
pub fn chunk_size(items: usize, workers: usize) -> usize {
    (items / (workers * 4).max(1)).max(1)
}

/// Map `f` over `items` with up to `workers` threads, preserving input
/// order: `out[i] == f(i, &items[i])` regardless of the worker count or
/// scheduling. `f` is called exactly once per item.
///
/// `workers == 0` auto-sizes from [`effective_workers`]; `workers <= 1`
/// (or a single item) degrades to a plain serial loop with no thread
/// spawned, so the serial tuner path has zero overhead.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = effective_workers(workers).min(items.len());
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let chunk = chunk_size(items.len(), workers);
    let cursor = AtomicUsize::new(0);
    // Each slot is written exactly once, by the worker that claimed its
    // index — OnceLock expresses that without a lock round-trip.
    let slots: Vec<OnceLock<R>> = (0..items.len()).map(|_| OnceLock::new()).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= items.len() {
                    break;
                }
                let end = (start + chunk).min(items.len());
                for (i, item) in items.iter().enumerate().take(end).skip(start) {
                    let r = f(i, item);
                    assert!(
                        slots[i].set(r).is_ok(),
                        "index {i} was claimed by two workers"
                    );
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("every index was claimed by exactly one worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_worker_count() {
        let items: Vec<i64> = (0..37).collect();
        let expect: Vec<i64> = items.iter().map(|v| v * v).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = parallel_map(&items, workers, |_, v| v * v);
            assert_eq!(got, expect, "order broken at {workers} workers");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = parallel_map(&items, 4, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |_, v| *v).is_empty());
        assert_eq!(parallel_map(&[7u32], 8, |_, v| v + 1), vec![8]);
    }

    #[test]
    fn zero_workers_auto_sizes_and_still_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let got = parallel_map(&items, 0, |i, _| i);
        assert_eq!(got, items);
    }

    #[test]
    fn chunking_is_worker_aware() {
        assert_eq!(chunk_size(16, 4), 1);
        assert_eq!(chunk_size(160, 4), 10);
        assert_eq!(chunk_size(3, 8), 1);
        assert!(chunk_size(1000, 2) >= 100);
    }

    #[test]
    fn effective_workers_resolves_zero_to_at_least_one() {
        assert!(effective_workers(0) >= 1);
        assert_eq!(effective_workers(5), 5);
    }
}
