//! The Tuner: schedule search over the loops not consumed by
//! tensorization (Section III-C.3).

pub mod cpu;
pub mod gpu;
pub mod parallel;
pub mod stats;
pub mod tier;

pub use cpu::{tune_cpu, tune_cpu_with_workers, CpuTuneMode, CpuTuneResult};
pub use gpu::{
    split_reduce_decompose, tune_gpu, tune_gpu_with_workers, ConvGpuHint, GpuTuneMode,
    GpuTuneResult,
};
pub use parallel::{effective_workers, parallel_map};
pub use stats::{tuner_candidates, tuner_invocations, tuner_searches};
pub use tier::TuneTier;
