//! The Tuner: schedule search over the loops not consumed by
//! tensorization (Section III-C.3).

pub mod cpu;
pub mod gpu;

pub use cpu::{tune_cpu, CpuTuneMode, CpuTuneResult};
pub use gpu::{split_reduce_decompose, tune_gpu, ConvGpuHint, GpuTuneMode, GpuTuneResult};
