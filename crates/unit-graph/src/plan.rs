//! Whole-model execution plans: the fusion pass made executable.
//!
//! [`crate::passes::fuse_elementwise`] *marks* epilogue chains; this
//! module **rewrites the compiled plan around them**. [`build_plan`]
//! walks a GEMM-based graph (the transformer family) and folds every
//! fusible elementwise / row-reduction consumer into its producer step's
//! [`EpilogueSpec`], producing a linear [`ModelPlan`] of fused steps.
//! Each step then compiles under a [`crate::CacheWorkload::Fused`] key —
//! one cache entry, one artifact line and one instruction tape per fused
//! group, with the epilogue executing inside the tape dispatch instead of
//! as reference-interpreter passes.
//!
//! Fusion legality matches the pass: a consumer folds into its producer
//! only when the producer has **no other consumers** (the epilogue
//! rewrites the producer's output in place). The serving value domain is
//! int8: any step whose chain does not already end in a saturating op
//! (softmax, layernorm, requantize) gets a trailing [`EpiOp::Quant`]
//! appended so its output is a legal operand for the next quantized GEMM.

use unit_tir::{EpiOp, EpilogueSpec};

use crate::ir::{Graph, OpKind};
use crate::workload::OpSpec;

/// Where a step's operand value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// The model's (quantized) input tokens.
    Input,
    /// The output of an earlier plan step, by index.
    Step(usize),
}

/// One fused step of a model plan: a GEMM core plus the epilogue chain
/// folded into it.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// Diagnostic name (the core GEMM's graph node name).
    pub name: String,
    /// The tensorized core.
    pub op: OpSpec,
    /// Epilogue chain fused after the core.
    pub epi: EpilogueSpec,
    /// Where the activation (left) operand comes from.
    pub data: PlanSource,
    /// Where the weight (right) operand comes from: an earlier step for
    /// attention matmuls, `None` for an implicit model weight.
    pub weight: Option<PlanSource>,
    /// Orientation of an activation-sourced weight: `true` when the
    /// producer's rows enumerate this GEMM's output columns (`QK^T`
    /// scores), `false` when they enumerate the reduction axis
    /// (scores-times-V).
    pub weight_rows_are_n: bool,
    /// Residual operands, one per [`EpiOp::Add`] in `epi`, in chain order.
    pub residuals: Vec<PlanSource>,
}

/// A whole model lowered to a linear sequence of fused steps.
#[derive(Debug, Clone)]
pub struct ModelPlan {
    /// Model name (from the graph).
    pub name: String,
    /// Fused steps in execution order.
    pub steps: Vec<PlanStep>,
    /// Index of the step producing the model output.
    pub output: usize,
}

impl ModelPlan {
    /// Total epilogue operations fused across all steps — the number of
    /// reference-interpreter passes the fused plan eliminates per forward
    /// pass.
    #[must_use]
    pub fn fused_epilogue_ops(&self) -> usize {
        self.steps.iter().map(|s| s.epi.len()).sum()
    }
}

/// Lower a GEMM-based graph into a fused [`ModelPlan`].
///
/// Supported node kinds: `Input`, `Quantize`/`Dequantize` (domain markers
/// — passthrough), `Gemm` (a step), and the fusible epilogue consumers
/// `BiasAdd`, `Relu`, `Add`, `Softmax`, `LayerNorm`.
///
/// # Errors
///
/// A human-readable description of the unsupported construct (CNN
/// operators, a non-single-consumer epilogue chain the plan cannot
/// serialize, a weight producer with an unrecognizable orientation).
pub fn build_plan(graph: &Graph) -> Result<ModelPlan, String> {
    let mut consumers = vec![0usize; graph.nodes.len()];
    for node in &graph.nodes {
        for input in &node.inputs {
            consumers[input.0 as usize] += 1;
        }
    }
    let mut steps: Vec<PlanStep> = Vec::new();
    // The plan-level value of each graph node, once known.
    let mut src: Vec<Option<PlanSource>> = vec![None; graph.nodes.len()];
    let source_of =
        |src: &[Option<PlanSource>], id: crate::ir::NodeId| -> Result<PlanSource, String> {
            src[id.0 as usize].ok_or_else(|| {
                format!(
                    "node {} consumed before its plan value is known",
                    graph.node(id).name
                )
            })
        };

    for node in &graph.nodes {
        let value = match &node.op {
            OpKind::Input(_) => PlanSource::Input,
            OpKind::Quantize | OpKind::Dequantize => source_of(&src, node.inputs[0])?,
            OpKind::Gemm { m, n, k, batch } => {
                let op = OpSpec::Gemm {
                    m: *m,
                    n: *n,
                    k: *k,
                    batch: *batch,
                };
                let data = source_of(&src, node.inputs[0])?;
                let (weight, weight_rows_are_n) = match node.inputs.get(1) {
                    None => (None, false),
                    Some(w) => {
                        let wsrc = source_of(&src, *w)?;
                        let (rows, cols) = producer_dims(graph, &steps, wsrc)?;
                        // The producer's rows either enumerate this GEMM's
                        // output columns (QK^T: rows == n, cols == batch*k)
                        // or its reduction axis (scores*V: rows == k,
                        // cols == batch*n). Prefer the former when both fit.
                        if rows == *n && cols == batch * k {
                            (Some(wsrc), true)
                        } else if rows == *k && cols == batch * n {
                            (Some(wsrc), false)
                        } else {
                            return Err(format!(
                                "gemm {}: weight producer is {rows}x{cols}, \
                                 which matches neither orientation",
                                node.name
                            ));
                        }
                    }
                };
                steps.push(PlanStep {
                    name: node.name.clone(),
                    op,
                    epi: EpilogueSpec::default(),
                    data,
                    weight,
                    weight_rows_are_n,
                    residuals: Vec::new(),
                });
                PlanSource::Step(steps.len() - 1)
            }
            OpKind::BiasAdd | OpKind::Relu | OpKind::Add | OpKind::Softmax | OpKind::LayerNorm => {
                let first = node.inputs[0];
                let producer = source_of(&src, first)?;
                let step = match producer {
                    PlanSource::Step(s) => s,
                    PlanSource::Input => {
                        return Err(format!(
                            "epilogue op {} applies directly to the model input",
                            node.name
                        ))
                    }
                };
                if consumers[first.0 as usize] != 1 {
                    return Err(format!(
                        "epilogue op {} cannot fuse: its producer has {} consumers",
                        node.name, consumers[first.0 as usize]
                    ));
                }
                let epi_op = match node.op {
                    OpKind::BiasAdd => EpiOp::Bias,
                    OpKind::Relu => EpiOp::Relu,
                    OpKind::Add => EpiOp::Add,
                    OpKind::Softmax => EpiOp::Softmax,
                    OpKind::LayerNorm => EpiOp::LayerNorm,
                    _ => unreachable!(),
                };
                if epi_op == EpiOp::Add {
                    let residual = source_of(&src, node.inputs[1])?;
                    steps[step].residuals.push(residual);
                }
                if !steps[step].epi.push(epi_op) {
                    return Err(format!(
                        "epilogue chain of step {} overflows",
                        steps[step].name
                    ));
                }
                PlanSource::Step(step)
            }
            other => {
                return Err(format!(
                    "node {}: {other:?} is not supported in a fused model plan",
                    node.name
                ))
            }
        };
        src[node.id.0 as usize] = Some(value);
    }

    // Serving convention: the interior domain is int8. A chain already
    // ending in a saturating op (softmax probabilities, layernorm output,
    // an explicit requantize) is in-domain; anything else requantizes.
    for step in &mut steps {
        if !matches!(
            step.epi.last(),
            Some(EpiOp::Softmax | EpiOp::LayerNorm | EpiOp::Quant)
        ) {
            assert!(step.epi.push(EpiOp::Quant), "chain overflow");
        }
    }

    let output = match source_of(&src, graph.output)? {
        PlanSource::Step(s) => s,
        PlanSource::Input => return Err("model output is its input".to_string()),
    };
    Ok(ModelPlan {
        name: graph.name.clone(),
        steps,
        output,
    })
}

/// Logical `(rows, cols)` of a plan source used as a weight, with the
/// producer's head batch folded into the columns.
fn producer_dims(graph: &Graph, steps: &[PlanStep], src: PlanSource) -> Result<(i64, i64), String> {
    match src {
        PlanSource::Input => {
            let input = graph
                .nodes
                .iter()
                .find(|n| matches!(n.op, OpKind::Input(_)))
                .ok_or_else(|| "graph has no input node".to_string())?;
            match &input.op {
                OpKind::Input(shape) if shape.dims.len() == 2 => Ok((shape.dims[0], shape.dims[1])),
                _ => Err("weight-from-input needs a 2D token matrix".to_string()),
            }
        }
        PlanSource::Step(s) => match steps[s].op {
            OpSpec::Gemm { m, n, batch, .. } => Ok((m, batch * n)),
            _ => Err(format!("step {} is not a GEMM", steps[s].name)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::transformer_tiny;
    use crate::CacheWorkload;
    use std::collections::BTreeSet;

    #[test]
    fn transformer_tiny_lowers_to_eight_fused_steps() {
        let plan = build_plan(&transformer_tiny()).expect("plan builds");
        assert_eq!(plan.steps.len(), 8, "one step per GEMM node");
        assert_eq!(
            plan.output, 7,
            "last step (ln2 fused into ffn2) is the output"
        );
        let by_name: Vec<(&str, String)> = plan
            .steps
            .iter()
            .map(|s| (s.name.as_str(), s.epi.encode()))
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("block1_q_gemm", "bias.quant".to_string()),
                ("block1_k_gemm", "bias.quant".to_string()),
                ("block1_v_gemm", "bias.quant".to_string()),
                ("block1_scores", "softmax".to_string()),
                ("block1_attn", "quant".to_string()),
                ("block1_out_gemm", "bias.add.layernorm".to_string()),
                ("block1_ffn1_gemm", "bias.relu.quant".to_string()),
                ("block1_ffn2_gemm", "bias.add.layernorm".to_string()),
            ]
        );
        // Residual wiring: out's residual is the model input, ffn2's is
        // the out step.
        assert_eq!(plan.steps[5].residuals, vec![PlanSource::Input]);
        assert_eq!(plan.steps[7].residuals, vec![PlanSource::Step(5)]);
        // Attention weights come from activations with the right
        // orientation: K rows enumerate output columns, V rows the
        // reduction axis.
        assert_eq!(plan.steps[3].weight, Some(PlanSource::Step(1)));
        assert!(plan.steps[3].weight_rows_are_n);
        assert_eq!(plan.steps[4].weight, Some(PlanSource::Step(2)));
        assert!(!plan.steps[4].weight_rows_are_n);
        // 17 epilogue ops execute inside tapes instead of as reference
        // passes on each forward (q/k/v chains count once per step).
        assert_eq!(plan.fused_epilogue_ops(), 17);
        // Q/K/V share one fused workload: 6 unique fused cache entries,
        // carrying 13 unique-kernel epilogue ops between them.
        let unique: BTreeSet<String> = plan
            .steps
            .iter()
            .map(|s| {
                CacheWorkload::Fused {
                    op: s.op,
                    epi: s.epi,
                }
                .encode()
            })
            .collect();
        assert_eq!(unique.len(), 6);
        let unique_ops: usize = plan
            .steps
            .iter()
            .map(|s| (s.epi.encode(), s.op))
            .collect::<BTreeSet<_>>()
            .iter()
            .map(|(e, _)| EpilogueSpec::decode(e).unwrap().len())
            .sum();
        assert_eq!(unique_ops, 13);
    }

    #[test]
    fn branched_elementwise_consumers_refuse_to_fuse() {
        use crate::ir::{GraphBuilder, TensorShape};
        use unit_dsl::DType;
        let mut b = GraphBuilder::new("branch");
        let input = b.add(
            OpKind::Input(TensorShape {
                dims: vec![8, 16],
                dtype: DType::F32,
            }),
            &[],
            "tokens",
        );
        let g = b.gemm((8, 16, 16), 1, &[input], "g");
        let relu = b.add(OpKind::Relu, &[g], "relu");
        let add = b.add(OpKind::Add, &[relu, g], "res");
        let graph = b.finish(add);
        let err = build_plan(&graph).expect_err("two consumers of g");
        assert!(err.contains("2 consumers"), "got: {err}");
    }

    #[test]
    fn fused_workloads_round_trip_the_cache_encoding() {
        let plan = build_plan(&transformer_tiny()).unwrap();
        for step in &plan.steps {
            let w = CacheWorkload::Fused {
                op: step.op,
                epi: step.epi,
            };
            let text = w.encode();
            assert_eq!(CacheWorkload::decode(&text), Ok(w), "encoding `{text}`");
            // Never collides with the unfused core.
            assert_ne!(text, CacheWorkload::Op(step.op).encode());
        }
    }
}
