//! A Relay-like graph IR: a DAG of operators with shape inference.
//!
//! Batch size is fixed at 1 throughout, matching the paper's evaluation
//! ("we target the N=1 cases, because it is hard to optimize but critical
//! for inference").

use std::fmt;

use serde::{Deserialize, Serialize};
use unit_dsl::DType;

use crate::workload::{ConvSpec, OpSpec};

/// Identifier of a node within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A tensor shape at batch 1: `CHW` (2D feature maps), `CDHW` (3D), or a
/// flat vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorShape {
    /// Dimension extents.
    pub dims: Vec<i64>,
    /// Element type.
    pub dtype: DType,
}

impl TensorShape {
    /// Feature-map shape `C x H x W`.
    #[must_use]
    pub fn chw(c: i64, h: i64, w: i64, dtype: DType) -> TensorShape {
        TensorShape {
            dims: vec![c, h, w],
            dtype,
        }
    }

    /// Total element count.
    #[must_use]
    pub fn elems(&self) -> i64 {
        self.dims.iter().product()
    }

    /// Size in bytes.
    #[must_use]
    pub fn bytes(&self) -> i64 {
        self.elems() * self.dtype.bytes() as i64
    }
}

/// Operator kinds. Convolution/dense carry their workload descriptor; the
/// remaining operators are memory-bound and described by their data volume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// Graph input with the given shape.
    Input(TensorShape),
    /// 2D/3D (grouped) convolution.
    Conv(ConvSpec),
    /// (Batched) matrix multiplication: `batch` instances of
    /// `(m x k) * (k x n)` — projection layers at `batch == 1`,
    /// attention matmuls at `batch == heads`.
    Gemm {
        /// Rows of the left operand (e.g. sequence length).
        m: i64,
        /// Output features.
        n: i64,
        /// Reduction depth.
        k: i64,
        /// Independent instances in one launch.
        batch: i64,
    },
    /// Fully connected layer: `units` outputs from a flattened input.
    Dense {
        /// Output feature count.
        units: i64,
    },
    /// Channel-wise bias addition.
    BiasAdd,
    /// Rectified linear unit.
    Relu,
    /// Elementwise addition (residual connections).
    Add,
    /// Channel concatenation (inception branches).
    Concat,
    /// Max pooling.
    MaxPool {
        /// Window size.
        k: i64,
        /// Stride.
        s: i64,
        /// Padding.
        pad: i64,
    },
    /// Average pooling.
    AvgPool {
        /// Window size.
        k: i64,
        /// Stride.
        s: i64,
        /// Padding.
        pad: i64,
    },
    /// Global average pooling to `C x 1 x 1`.
    GlobalAvgPool,
    /// Flatten to a vector.
    Flatten,
    /// Softmax over the class vector (or attention scores).
    Softmax,
    /// Layer normalization (memory-bound, costed by data volume).
    LayerNorm,
    /// fp32 -> quantized int8 domain entry.
    Quantize,
    /// Quantized -> fp32 domain exit.
    Dequantize,
}

/// A graph node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Identifier.
    pub id: NodeId,
    /// Operator.
    pub op: OpKind,
    /// Input nodes (data-flow edges).
    pub inputs: Vec<NodeId>,
    /// Diagnostic name.
    pub name: String,
    /// Whether a later pass fused this node into its producer (fused nodes
    /// cost nothing at execution).
    pub fused_into_producer: bool,
}

/// A model graph (DAG, nodes in topological order by construction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    /// Model name.
    pub name: String,
    /// Nodes in topological order.
    pub nodes: Vec<Node>,
    /// The output node.
    pub output: NodeId,
}

impl Graph {
    /// Node lookup.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Every convolution workload in the graph, in topological order.
    #[must_use]
    pub fn conv_workloads(&self) -> Vec<ConvSpec> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.op {
                OpKind::Conv(spec) => Some(*spec),
                _ => None,
            })
            .collect()
    }

    /// Every tensorizable workload (convolution *and* GEMM) in the graph,
    /// in topological order, normalized into the explicit [`OpSpec`]
    /// model. This is what the graph compiler deduplicates and fans out.
    #[must_use]
    pub fn op_workloads(&self) -> Vec<OpSpec> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.op {
                OpKind::Conv(spec) => Some(OpSpec::from_conv(*spec)),
                OpKind::Gemm { m, n, k, batch } => Some(OpSpec::Gemm {
                    m: *m,
                    n: *n,
                    k: *k,
                    batch: *batch,
                }),
                _ => None,
            })
            .collect()
    }

    /// Every dense (fully connected) layer as `(in_features, units)`,
    /// in topological order. `in_features` is resolved through shape
    /// inference, exactly as the graph compiler costs it — this is what
    /// the serving runtime persists under `CacheWorkload::Dense` keys so
    /// warm starts skip the classifier's tuner search too.
    #[must_use]
    pub fn dense_workloads(&self) -> Vec<(i64, i64)> {
        let shapes = self.infer_shapes();
        self.nodes
            .iter()
            .filter_map(|n| match &n.op {
                OpKind::Dense { units } => Some((shapes[n.inputs[0].0 as usize].elems(), *units)),
                _ => None,
            })
            .collect()
    }

    /// Infer the output shape of every node.
    ///
    /// # Panics
    ///
    /// Panics on rank-inconsistent graphs (construction bugs).
    #[must_use]
    pub fn infer_shapes(&self) -> Vec<TensorShape> {
        let mut shapes: Vec<TensorShape> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let shape = match &node.op {
                OpKind::Input(s) => s.clone(),
                OpKind::Conv(w) => {
                    if w.is_3d() {
                        TensorShape {
                            dims: vec![w.k, w.od(), w.ohw(), w.ohw()],
                            dtype: shapes[node.inputs[0].0 as usize].dtype.accumulator(),
                        }
                    } else {
                        TensorShape::chw(
                            w.k,
                            w.ohw(),
                            w.ohw(),
                            shapes[node.inputs[0].0 as usize].dtype.accumulator(),
                        )
                    }
                }
                OpKind::Gemm { m, n, batch, .. } => {
                    let dtype = shapes[node.inputs[0].0 as usize].dtype.accumulator();
                    if *batch == 1 {
                        TensorShape {
                            dims: vec![*m, *n],
                            dtype,
                        }
                    } else {
                        TensorShape {
                            dims: vec![*batch, *m, *n],
                            dtype,
                        }
                    }
                }
                OpKind::Dense { units } => TensorShape {
                    dims: vec![*units],
                    dtype: shapes[node.inputs[0].0 as usize].dtype.accumulator(),
                },
                OpKind::BiasAdd | OpKind::Relu | OpKind::Quantize | OpKind::Dequantize => {
                    let mut s = shapes[node.inputs[0].0 as usize].clone();
                    s.dtype = match node.op {
                        OpKind::Quantize => DType::U8,
                        OpKind::Dequantize => DType::F32,
                        _ => s.dtype,
                    };
                    s
                }
                OpKind::Add => shapes[node.inputs[0].0 as usize].clone(),
                OpKind::Concat => {
                    let mut base = shapes[node.inputs[0].0 as usize].clone();
                    base.dims[0] = node
                        .inputs
                        .iter()
                        .map(|i| shapes[i.0 as usize].dims[0])
                        .sum();
                    base
                }
                OpKind::MaxPool { k, s, pad } | OpKind::AvgPool { k, s, pad } => {
                    let input = &shapes[node.inputs[0].0 as usize];
                    let mut dims = input.dims.clone();
                    let n = dims.len();
                    for dim in dims.iter_mut().skip(n - 2) {
                        *dim = (*dim + 2 * pad - k) / s + 1;
                    }
                    TensorShape {
                        dims,
                        dtype: input.dtype,
                    }
                }
                OpKind::GlobalAvgPool => {
                    let input = &shapes[node.inputs[0].0 as usize];
                    TensorShape {
                        dims: vec![input.dims[0], 1, 1],
                        dtype: input.dtype,
                    }
                }
                OpKind::Flatten => {
                    let input = &shapes[node.inputs[0].0 as usize];
                    TensorShape {
                        dims: vec![input.elems()],
                        dtype: input.dtype,
                    }
                }
                OpKind::Softmax | OpKind::LayerNorm => shapes[node.inputs[0].0 as usize].clone(),
            };
            shapes.push(shape);
        }
        shapes
    }

    /// Total multiply-accumulates of the model at batch 1.
    #[must_use]
    pub fn total_macs(&self) -> i64 {
        let shapes = self.infer_shapes();
        self.nodes
            .iter()
            .map(|n| match &n.op {
                OpKind::Conv(w) => w.macs(),
                OpKind::Gemm { m, n, k, batch } => batch * m * n * k,
                OpKind::Dense { units } => units * shapes[n.inputs[0].0 as usize].elems(),
                _ => 0,
            })
            .sum()
    }
}

/// Incremental graph construction (nodes are appended in topological
/// order).
#[derive(Debug)]
pub struct GraphBuilder {
    name: String,
    nodes: Vec<Node>,
}

impl GraphBuilder {
    /// Start a new graph.
    #[must_use]
    pub fn new(name: impl Into<String>) -> GraphBuilder {
        GraphBuilder {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// Append a node.
    pub fn add(&mut self, op: OpKind, inputs: &[NodeId], name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        for i in inputs {
            assert!(
                i.0 < id.0,
                "inputs must precede the node (topological order)"
            );
        }
        self.nodes.push(Node {
            id,
            op,
            inputs: inputs.to_vec(),
            name: name.into(),
            fused_into_producer: false,
        });
        id
    }

    /// Append `conv -> bias_add -> relu` and return the relu node.
    pub fn conv_bn_relu(&mut self, spec: ConvSpec, input: NodeId, name: &str) -> NodeId {
        let c = self.add(OpKind::Conv(spec), &[input], format!("{name}_conv"));
        let b = self.add(OpKind::BiasAdd, &[c], format!("{name}_bias"));
        self.add(OpKind::Relu, &[b], format!("{name}_relu"))
    }

    /// Append a (batched) GEMM node `(m x k) * (k x n)` over `inputs`.
    pub fn gemm(
        &mut self,
        (m, n, k): (i64, i64, i64),
        batch: i64,
        inputs: &[NodeId],
        name: impl Into<String>,
    ) -> NodeId {
        self.add(OpKind::Gemm { m, n, k, batch }, inputs, name)
    }

    /// Append `gemm -> bias_add` (a projection layer) and return the bias
    /// node.
    pub fn gemm_bias(&mut self, (m, n, k): (i64, i64, i64), input: NodeId, name: &str) -> NodeId {
        let g = self.gemm((m, n, k), 1, &[input], format!("{name}_gemm"));
        self.add(OpKind::BiasAdd, &[g], format!("{name}_bias"))
    }

    /// Finish with the given output node.
    #[must_use]
    pub fn finish(self, output: NodeId) -> Graph {
        Graph {
            name: self.name,
            nodes: self.nodes,
            output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_inference_through_a_small_cnn() {
        let mut b = GraphBuilder::new("tiny");
        let input = b.add(
            OpKind::Input(TensorShape::chw(3, 32, 32, DType::F32)),
            &[],
            "data",
        );
        let q = b.add(OpKind::Quantize, &[input], "q");
        let c1 = b.conv_bn_relu(ConvSpec::new_2d(3, 32, 16, 3, 1, 1), q, "c1");
        let p = b.add(OpKind::MaxPool { k: 2, s: 2, pad: 0 }, &[c1], "pool");
        let g = b.add(OpKind::GlobalAvgPool, &[p], "gap");
        let f = b.add(OpKind::Flatten, &[g], "flat");
        let d = b.add(OpKind::Dense { units: 10 }, &[f], "fc");
        let s = b.add(OpKind::Softmax, &[d], "sm");
        let graph = b.finish(s);
        let shapes = graph.infer_shapes();
        assert_eq!(shapes[c1.0 as usize].dims, vec![16, 32, 32]);
        assert_eq!(shapes[p.0 as usize].dims, vec![16, 16, 16]);
        assert_eq!(shapes[d.0 as usize].dims, vec![10]);
        assert_eq!(graph.conv_workloads().len(), 1);
        assert!(graph.total_macs() > 0);
    }

    #[test]
    fn concat_sums_channels() {
        let mut b = GraphBuilder::new("branches");
        let input = b.add(
            OpKind::Input(TensorShape::chw(8, 14, 14, DType::U8)),
            &[],
            "data",
        );
        let l = b.conv_bn_relu(ConvSpec::new_2d(8, 14, 16, 1, 1, 0), input, "l");
        let r = b.conv_bn_relu(ConvSpec::new_2d(8, 14, 32, 3, 1, 1), input, "r");
        let cat = b.add(OpKind::Concat, &[l, r], "cat");
        let graph = b.finish(cat);
        let shapes = graph.infer_shapes();
        assert_eq!(shapes[cat.0 as usize].dims, vec![48, 14, 14]);
    }

    #[test]
    fn gemm_nodes_infer_shapes_and_workloads() {
        use crate::workload::OpSpec;
        let mut b = GraphBuilder::new("gemms");
        let input = b.add(
            OpKind::Input(TensorShape {
                dims: vec![64, 128],
                dtype: DType::F32,
            }),
            &[],
            "tokens",
        );
        let q = b.add(OpKind::Quantize, &[input], "q");
        let proj = b.gemm_bias((64, 128, 128), q, "proj");
        let scores = b.gemm((64, 64, 16), 8, &[proj, proj], "scores");
        let sm = b.add(OpKind::Softmax, &[scores], "sm");
        let ln = b.add(OpKind::LayerNorm, &[sm], "ln");
        let g = b.finish(ln);
        let shapes = g.infer_shapes();
        // batch == 1 GEMM: 2D output; batched: leading batch dim.
        assert_eq!(shapes[(proj.0 - 1) as usize].dims, vec![64, 128]);
        assert_eq!(shapes[scores.0 as usize].dims, vec![8, 64, 64]);
        assert_eq!(shapes[ln.0 as usize].dims, vec![8, 64, 64]);
        // Workloads surface as normalized OpSpecs, in topological order.
        assert_eq!(
            g.op_workloads(),
            vec![
                OpSpec::gemm(64, 128, 128),
                OpSpec::batched_gemm(8, 64, 64, 16)
            ]
        );
        assert!(g.conv_workloads().is_empty());
        assert_eq!(g.total_macs(), 64 * 128 * 128 + 8 * 64 * 64 * 16);
    }

    #[test]
    fn op_workloads_normalize_conv_groups() {
        use crate::workload::OpSpec;
        let mut b = GraphBuilder::new("mixed");
        let input = b.add(
            OpKind::Input(TensorShape::chw(8, 16, 16, DType::U8)),
            &[],
            "data",
        );
        let dw = b.conv_bn_relu(ConvSpec::grouped_2d(8, 16, 8, 3, 1, 1, 8), input, "dw");
        let pw = b.conv_bn_relu(ConvSpec::new_2d(8, 16, 16, 1, 1, 0), dw, "pw");
        let g = b.finish(pw);
        let w = g.op_workloads();
        assert_eq!(w.len(), 2);
        assert!(w[0].is_depthwise());
        assert_eq!(w[0], OpSpec::depthwise(8, 16, 3, 1, 1));
        assert!(matches!(w[1], OpSpec::Conv(_)));
    }

    #[test]
    #[should_panic(expected = "topological order")]
    fn forward_references_are_rejected() {
        let mut b = GraphBuilder::new("bad");
        let _ = b.add(OpKind::Relu, &[NodeId(5)], "r");
    }
}
