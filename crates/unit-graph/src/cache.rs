//! An N-way sharded concurrent kernel cache.
//!
//! The graph compiler caches one compiled-kernel result per *(workload,
//! full tuning config)*. Under `compile_model_parallel` many threads hit
//! the cache at once; a single `Mutex<HashMap>` would serialize them on
//! every lookup and insert. Sharding the map N ways by key hash keeps the
//! critical sections tiny and lets distinct workloads proceed without
//! contention — each shard is still a plain `std::sync::Mutex`, so there
//! is no unsafe code and no external dependency.
//!
//! Consistency contract: a key is written at most once per distinct value
//! via [`ShardedCache::get_or_insert_with`] — if two threads race on the
//! same key, the first insert wins and the loser's value is discarded, so
//! every reader observes one canonical value per key. With deterministic
//! compilation (the tuner's guarantee) both racers compute the same value
//! anyway; first-insert-wins makes the cache consistent even if that
//! invariant were broken upstream.

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Default shard count: enough to make collisions between a handful of
/// worker threads unlikely, small enough to stay cheap to scan for
/// [`ShardedCache::len`].
pub const DEFAULT_SHARDS: usize = 16;

/// A concurrent hash map sharded N ways by key hash.
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
}

impl<K: Hash + Eq, V: Clone> ShardedCache<K, V> {
    /// An empty cache with `shards` shards (clamped to at least 1).
    #[must_use]
    pub fn new(shards: usize) -> ShardedCache<K, V> {
        ShardedCache {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up a key, cloning the value out of the shard.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().unwrap().get(key).cloned()
    }

    /// Insert unconditionally (last write wins). Prefer
    /// [`ShardedCache::get_or_insert_with`] for racy fill paths.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key).lock().unwrap().insert(key, value);
    }

    /// Return the cached value for `key`, computing it with `compute`
    /// (outside any lock) on a miss. If another thread inserted the key
    /// between the miss and the insert, the earlier value wins and is
    /// returned — every caller observes the same canonical value.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(hit) = self.get(&key) {
            return hit;
        }
        let value = compute();
        match self.shard(&key).lock().unwrap().entry(key) {
            Entry::Occupied(e) => e.get().clone(),
            Entry::Vacant(e) => e.insert(value).clone(),
        }
    }

    /// Total entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards (fixed at construction).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// Export every entry. Shards are visited in order but entries within
    /// a shard come out in `HashMap` iteration order — callers that need
    /// a canonical order (the artifact store's stable file format) sort
    /// the snapshot themselves.
    ///
    /// The snapshot is *per shard* consistent, not globally atomic: a
    /// concurrent insert may or may not appear. With first-insert-wins
    /// semantics every entry that does appear is canonical.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.lock().unwrap();
            out.extend(map.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Bulk-import entries (the warm-start restore path). Existing keys
    /// keep their first-inserted value, matching
    /// [`ShardedCache::get_or_insert_with`]'s first-insert-wins contract.
    /// Returns how many entries were actually inserted.
    pub fn restore(&self, entries: impl IntoIterator<Item = (K, V)>) -> usize {
        let mut inserted = 0;
        for (k, v) in entries {
            let mut map = self.shard(&k).lock().unwrap();
            if let Entry::Vacant(e) = map.entry(k) {
                e.insert(v);
                inserted += 1;
            }
        }
        inserted
    }
}

impl<K: Hash + Eq, V: Clone> Default for ShardedCache<K, V> {
    fn default() -> ShardedCache<K, V> {
        ShardedCache::new(DEFAULT_SHARDS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn get_or_insert_computes_once_per_key_when_uncontended() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(4);
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = cache.get_or_insert_with(42, || {
                calls.fetch_add(1, Ordering::Relaxed);
                7
            });
            assert_eq!(v, 7);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(8);
        for k in 0..256 {
            cache.insert(k, k);
        }
        assert_eq!(cache.len(), 256);
        assert_eq!(cache.shard_count(), 8);
        for k in 0..256 {
            assert_eq!(cache.get(&k), Some(k));
        }
    }

    #[test]
    fn first_insert_wins_under_a_race() {
        // Simulate the race deterministically: manual miss, two inserts
        // through get_or_insert_with.
        let cache: ShardedCache<u32, &'static str> = ShardedCache::new(2);
        assert_eq!(cache.get_or_insert_with(1, || "first"), "first");
        assert_eq!(cache.get_or_insert_with(1, || "second"), "first");
    }

    #[test]
    fn concurrent_fill_is_consistent() {
        let cache: Arc<ShardedCache<usize, usize>> = Arc::new(ShardedCache::new(4));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for k in 0..64 {
                        let v = cache.get_or_insert_with(k, || k * 10);
                        assert_eq!(v, k * 10, "thread {t} saw a torn value");
                    }
                });
            }
        });
        assert_eq!(cache.len(), 64);
    }

    #[test]
    fn snapshot_restore_round_trips_with_first_insert_wins() {
        let a: ShardedCache<u64, u64> = ShardedCache::new(4);
        for k in 0..32 {
            a.insert(k, k * 2);
        }
        let snap = a.snapshot();
        assert_eq!(snap.len(), 32);

        // Restore into a cache that already holds a conflicting entry:
        // the existing value wins, everything else lands.
        let b: ShardedCache<u64, u64> = ShardedCache::new(8);
        b.insert(7, 999);
        let inserted = b.restore(snap);
        assert_eq!(inserted, 31, "the conflicting key is skipped");
        assert_eq!(b.len(), 32);
        assert_eq!(b.get(&7), Some(999), "first insert wins on restore");
        for k in 0..32u64 {
            if k != 7 {
                assert_eq!(b.get(&k), Some(k * 2));
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let cache: ShardedCache<u8, u8> = ShardedCache::new(0);
        cache.insert(1, 2);
        assert_eq!(cache.shard_count(), 1);
        assert_eq!(cache.get(&1), Some(2));
        assert!(!cache.is_empty());
    }
}
