//! Convolution workload descriptors — the unit the evaluation (Table I,
//! Figures 10/11/13) is phrased in.

use serde::{Deserialize, Serialize};

/// One (grouped, strided, padded) 2D or 3D convolution layer at batch 1.
///
/// Kernels may be rectangular (`r x rw`, e.g. inception-v3's 1x7 and 7x1
/// factorized convolutions); the evaluation layers keep square feature maps
/// via SAME-style padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Input channels.
    pub c: i64,
    /// Input height and width (the evaluation layers are square).
    pub ihw: i64,
    /// Input depth for 3D convolutions (1 = 2D).
    pub id: i64,
    /// Output channels.
    pub k: i64,
    /// Kernel height (and depth for 3D).
    pub r: i64,
    /// Kernel width.
    pub rw: i64,
    /// Spatial stride.
    pub stride: i64,
    /// Padding on top/bottom.
    pub pad: i64,
    /// Padding on left/right.
    pub pad_w: i64,
    /// Groups (1 = dense conv, `c` = depthwise).
    pub groups: i64,
}

impl ConvSpec {
    /// A plain dense 2D convolution with a square kernel.
    #[must_use]
    pub fn new_2d(c: i64, ihw: i64, k: i64, r: i64, stride: i64, pad: i64) -> ConvSpec {
        ConvSpec {
            c,
            ihw,
            id: 1,
            k,
            r,
            rw: r,
            stride,
            pad,
            pad_w: pad,
            groups: 1,
        }
    }

    /// A dense 2D convolution with a rectangular `r x rw` kernel.
    #[must_use]
    pub fn new_rect(
        c: i64,
        ihw: i64,
        k: i64,
        (r, rw): (i64, i64),
        stride: i64,
        (pad, pad_w): (i64, i64),
    ) -> ConvSpec {
        ConvSpec {
            c,
            ihw,
            id: 1,
            k,
            r,
            rw,
            stride,
            pad,
            pad_w,
            groups: 1,
        }
    }

    /// A depthwise 2D convolution.
    #[must_use]
    pub fn depthwise(c: i64, ihw: i64, r: i64, stride: i64, pad: i64) -> ConvSpec {
        ConvSpec {
            c,
            ihw,
            id: 1,
            k: c,
            r,
            rw: r,
            stride,
            pad,
            pad_w: pad,
            groups: c,
        }
    }

    /// A dense 3D convolution with input `id x ihw x ihw`.
    #[must_use]
    pub fn new_3d(c: i64, ihw: i64, id: i64, k: i64, r: i64, stride: i64, pad: i64) -> ConvSpec {
        ConvSpec {
            c,
            ihw,
            id,
            k,
            r,
            rw: r,
            stride,
            pad,
            pad_w: pad,
            groups: 1,
        }
    }

    /// Output height.
    #[must_use]
    pub fn oh(&self) -> i64 {
        (self.ihw + 2 * self.pad - self.r) / self.stride + 1
    }

    /// Output width.
    #[must_use]
    pub fn ow(&self) -> i64 {
        (self.ihw + 2 * self.pad_w - self.rw) / self.stride + 1
    }

    /// Output height/width for square-output layers (all evaluation layers).
    ///
    /// # Panics
    ///
    /// Panics if the output is not square (misuse of a rectangular layer).
    #[must_use]
    pub fn ohw(&self) -> i64 {
        assert_eq!(self.oh(), self.ow(), "layer output is not square");
        self.oh()
    }

    /// Output depth (3D).
    #[must_use]
    pub fn od(&self) -> i64 {
        if self.id == 1 {
            1
        } else {
            (self.id + 2 * self.pad - self.r) / self.stride + 1
        }
    }

    /// Whether this is a depthwise convolution.
    #[must_use]
    pub fn is_depthwise(&self) -> bool {
        self.groups == self.c && self.groups > 1
    }

    /// Whether this is a 3D convolution.
    #[must_use]
    pub fn is_3d(&self) -> bool {
        self.id > 1
    }

    /// Total multiply-accumulates at batch 1.
    #[must_use]
    pub fn macs(&self) -> i64 {
        let spatial = self.oh() * self.ow() * self.od();
        let depth_taps = if self.is_3d() { self.r } else { 1 };
        let per_output = (self.c / self.groups) * self.r * self.rw * depth_taps;
        spatial * self.k * per_output
    }

    /// Input feature-map elements.
    #[must_use]
    pub fn input_elems(&self) -> i64 {
        self.c * self.ihw * self.ihw * self.id
    }

    /// Weight elements.
    #[must_use]
    pub fn weight_elems(&self) -> i64 {
        let depth_taps = if self.is_3d() { self.r } else { 1 };
        self.k * (self.c / self.groups) * self.r * self.rw * depth_taps
    }

    /// Output feature-map elements.
    #[must_use]
    pub fn output_elems(&self) -> i64 {
        self.k * self.oh() * self.ow() * self.od()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims_follow_the_conv_formula() {
        // Table I workload #1: C=288, IHW=35, K=384, R=3, stride 2 -> OHW 17.
        let w = ConvSpec::new_2d(288, 35, 384, 3, 2, 0);
        assert_eq!(w.ohw(), 17);
        // Workload #4: C=80, IHW=73, K=192, R=3, stride 1 -> OHW 71.
        let w4 = ConvSpec::new_2d(80, 73, 192, 3, 1, 0);
        assert_eq!(w4.ohw(), 71);
    }

    #[test]
    fn macs_count_depthwise_correctly() {
        let dense = ConvSpec::new_2d(32, 16, 64, 3, 1, 1);
        assert_eq!(dense.macs(), 16 * 16 * 64 * 32 * 9);
        let dw = ConvSpec::depthwise(32, 16, 3, 1, 1);
        assert!(dw.is_depthwise());
        assert_eq!(dw.macs(), 16 * 16 * 32 * 9);
    }

    #[test]
    fn rectangular_kernels_keep_square_outputs_with_same_padding() {
        // inception-v3's 1x7 conv at 17x17 with (0,3) padding.
        let w = ConvSpec::new_rect(128, 17, 128, (1, 7), 1, (0, 3));
        assert_eq!(w.oh(), 17);
        assert_eq!(w.ow(), 17);
        assert_eq!(w.macs(), 17 * 17 * 128 * 128 * 7);
    }

    #[test]
    fn conv3d_dimensions() {
        let w = ConvSpec::new_3d(64, 56, 8, 64, 3, 1, 1);
        assert!(w.is_3d());
        assert_eq!(w.ohw(), 56);
        assert_eq!(w.od(), 8);
        assert_eq!(w.macs(), 56 * 56 * 8 * 64 * 64 * 27);
    }
}
