//! Workload descriptors: the operator-generic [`OpSpec`] the graph
//! compiler, kernel cache and tuner entry points are phrased in, plus the
//! convolution-shaped [`ConvSpec`] the evaluation tables (Table I,
//! Figures 10/11/13) use.
//!
//! UNIT's pipeline is operator-agnostic — the Inspector matches loop
//! nests, not operator names — so the workload model must be too.
//! [`OpSpec`] models groups *explicitly* (a first-class `GroupedConv`
//! variant) instead of the historical `ConvSpec.groups == c` encoding of
//! depthwise layers, and adds (batched) GEMM as a peer of convolution.

use serde::{Deserialize, Serialize};

/// One (grouped, strided, padded) 2D or 3D convolution layer at batch 1.
///
/// Kernels may be rectangular (`r x rw`, e.g. inception-v3's 1x7 and 7x1
/// factorized convolutions); the evaluation layers keep square feature maps
/// via SAME-style padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Input channels.
    pub c: i64,
    /// Input height and width (the evaluation layers are square).
    pub ihw: i64,
    /// Input depth for 3D convolutions (1 = 2D).
    pub id: i64,
    /// Output channels.
    pub k: i64,
    /// Kernel height (and depth for 3D).
    pub r: i64,
    /// Kernel width.
    pub rw: i64,
    /// Spatial stride.
    pub stride: i64,
    /// Padding on top/bottom.
    pub pad: i64,
    /// Padding on left/right.
    pub pad_w: i64,
    /// Groups (1 = dense conv, `c` = depthwise).
    pub groups: i64,
}

impl ConvSpec {
    /// A plain dense 2D convolution with a square kernel.
    #[must_use]
    pub fn new_2d(c: i64, ihw: i64, k: i64, r: i64, stride: i64, pad: i64) -> ConvSpec {
        ConvSpec {
            c,
            ihw,
            id: 1,
            k,
            r,
            rw: r,
            stride,
            pad,
            pad_w: pad,
            groups: 1,
        }
    }

    /// A dense 2D convolution with a rectangular `r x rw` kernel.
    #[must_use]
    pub fn new_rect(
        c: i64,
        ihw: i64,
        k: i64,
        (r, rw): (i64, i64),
        stride: i64,
        (pad, pad_w): (i64, i64),
    ) -> ConvSpec {
        ConvSpec {
            c,
            ihw,
            id: 1,
            k,
            r,
            rw,
            stride,
            pad,
            pad_w,
            groups: 1,
        }
    }

    /// A grouped 2D convolution spec with the group count **explicit** —
    /// the replacement for the retired `ConvSpec::depthwise` compat
    /// constructor (graph nodes store `ConvSpec`; the workload layer
    /// normalizes through [`OpSpec::from_conv`], so a `groups == c == k`
    /// spec built here classifies as depthwise everywhere).
    ///
    /// # Panics
    ///
    /// Panics unless `groups` is positive and divides both `c` and `k`.
    #[must_use]
    pub fn grouped_2d(
        c: i64,
        ihw: i64,
        k: i64,
        r: i64,
        stride: i64,
        pad: i64,
        groups: i64,
    ) -> ConvSpec {
        assert!(groups >= 1, "groups must be positive");
        assert_eq!(c % groups, 0, "groups must divide input channels");
        assert_eq!(k % groups, 0, "groups must divide output channels");
        let mut spec = ConvSpec::new_2d(c, ihw, k, r, stride, pad);
        spec.groups = groups;
        spec
    }

    /// A dense 3D convolution with input `id x ihw x ihw`.
    #[must_use]
    pub fn new_3d(c: i64, ihw: i64, id: i64, k: i64, r: i64, stride: i64, pad: i64) -> ConvSpec {
        ConvSpec {
            c,
            ihw,
            id,
            k,
            r,
            rw: r,
            stride,
            pad,
            pad_w: pad,
            groups: 1,
        }
    }

    /// Output height.
    #[must_use]
    pub fn oh(&self) -> i64 {
        (self.ihw + 2 * self.pad - self.r) / self.stride + 1
    }

    /// Output width.
    #[must_use]
    pub fn ow(&self) -> i64 {
        (self.ihw + 2 * self.pad_w - self.rw) / self.stride + 1
    }

    /// Output height/width for square-output layers (all evaluation layers).
    ///
    /// # Panics
    ///
    /// Panics if the output is not square (misuse of a rectangular layer).
    #[must_use]
    pub fn ohw(&self) -> i64 {
        assert_eq!(self.oh(), self.ow(), "layer output is not square");
        self.oh()
    }

    /// Output depth (3D).
    #[must_use]
    pub fn od(&self) -> i64 {
        if self.id == 1 {
            1
        } else {
            (self.id + 2 * self.pad - self.r) / self.stride + 1
        }
    }

    /// Whether this is a depthwise convolution: one input *and* one
    /// output channel per group. A `groups == c` conv with a depth
    /// multiplier (`k == 2c`) is grouped, not depthwise — it still has
    /// `k/groups` output channels to reduce into per group.
    #[must_use]
    pub fn is_depthwise(&self) -> bool {
        self.groups == self.c && self.groups > 1 && self.k == self.c
    }

    /// Whether this is a 3D convolution.
    #[must_use]
    pub fn is_3d(&self) -> bool {
        self.id > 1
    }

    /// Total multiply-accumulates at batch 1.
    #[must_use]
    pub fn macs(&self) -> i64 {
        let spatial = self.oh() * self.ow() * self.od();
        let depth_taps = if self.is_3d() { self.r } else { 1 };
        let per_output = (self.c / self.groups) * self.r * self.rw * depth_taps;
        spatial * self.k * per_output
    }

    /// Input feature-map elements.
    #[must_use]
    pub fn input_elems(&self) -> i64 {
        self.c * self.ihw * self.ihw * self.id
    }

    /// Weight elements.
    #[must_use]
    pub fn weight_elems(&self) -> i64 {
        let depth_taps = if self.is_3d() { self.r } else { 1 };
        self.k * (self.c / self.groups) * self.r * self.rw * depth_taps
    }

    /// Output feature-map elements.
    #[must_use]
    pub fn output_elems(&self) -> i64 {
        self.k * self.oh() * self.ow() * self.od()
    }
}

/// An operator-generic workload: the unit the graph compiler deduplicates,
/// the kernel cache keys on, and the differential test matrix enumerates.
///
/// Three families, one pipeline: every variant lowers to a multiply-
/// accumulate reduction loop nest, which is exactly what the Inspector
/// pattern-matches — no variant needs per-op plumbing in `inspect` /
/// `match_compute` (that operator-agnosticism is the paper's core claim).
///
/// Grouped convolution is a *first-class* variant with its group count
/// stored explicitly, replacing the historical `ConvSpec.groups == c`
/// encoding of depthwise layers (whose deprecated `ConvSpec::depthwise`
/// compat constructor is now retired; build explicit specs with
/// [`ConvSpec::grouped_2d`] or [`OpSpec::depthwise`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpSpec {
    /// A dense (groups = 1) 2D or 3D convolution.
    Conv(ConvSpec),
    /// A grouped convolution: `groups` independent convolutions over
    /// `c/groups` input and `k/groups` output channels each.
    /// `groups == c` is depthwise.
    ///
    /// Invariant: `conv.groups == groups` (so `ConvSpec`'s MAC/element
    /// accounting stays correct); the constructors enforce it.
    GroupedConv {
        /// The convolution geometry (channels are totals, not per-group).
        conv: ConvSpec,
        /// The explicit group count (divides both `conv.c` and `conv.k`).
        groups: i64,
    },
    /// A (batched) matrix multiplication `out[b] = a[b] (m x k) * w[b]
    /// (k x n)`: dense/projection layers at `batch == 1`, attention-style
    /// batched matmuls at `batch == heads`.
    Gemm {
        /// Rows of the left operand (e.g. sequence length).
        m: i64,
        /// Columns of the right operand (output features).
        n: i64,
        /// The reduction depth.
        k: i64,
        /// Independent problem instances sharing one kernel launch.
        batch: i64,
    },
}

impl OpSpec {
    /// A dense 2D convolution workload.
    #[must_use]
    pub fn conv2d(c: i64, ihw: i64, k: i64, r: i64, stride: i64, pad: i64) -> OpSpec {
        OpSpec::Conv(ConvSpec::new_2d(c, ihw, k, r, stride, pad))
    }

    /// A dense 3D convolution workload.
    #[must_use]
    pub fn conv3d(c: i64, ihw: i64, id: i64, k: i64, r: i64, stride: i64, pad: i64) -> OpSpec {
        OpSpec::Conv(ConvSpec::new_3d(c, ihw, id, k, r, stride, pad))
    }

    /// A grouped 2D convolution with the group count modeled explicitly.
    ///
    /// # Panics
    ///
    /// Panics unless `groups` divides both `c` and `k`.
    #[must_use]
    pub fn grouped(c: i64, ihw: i64, k: i64, r: i64, stride: i64, pad: i64, groups: i64) -> OpSpec {
        assert!(groups >= 1, "groups must be positive");
        assert_eq!(c % groups, 0, "groups must divide input channels");
        assert_eq!(k % groups, 0, "groups must divide output channels");
        let mut conv = ConvSpec::new_2d(c, ihw, k, r, stride, pad);
        conv.groups = groups;
        if groups == 1 {
            OpSpec::Conv(conv)
        } else {
            OpSpec::GroupedConv { conv, groups }
        }
    }

    /// A depthwise 2D convolution (`groups == c == k`), the explicit
    /// replacement for the retired `ConvSpec::depthwise` compat
    /// constructor.
    #[must_use]
    pub fn depthwise(c: i64, ihw: i64, r: i64, stride: i64, pad: i64) -> OpSpec {
        OpSpec::grouped(c, ihw, c, r, stride, pad, c)
    }

    /// A single matrix multiplication `(m x k) * (k x n)`.
    #[must_use]
    pub fn gemm(m: i64, n: i64, k: i64) -> OpSpec {
        OpSpec::batched_gemm(1, m, n, k)
    }

    /// A batched matrix multiplication (`batch` independent instances).
    ///
    /// # Panics
    ///
    /// Panics on non-positive dimensions.
    #[must_use]
    pub fn batched_gemm(batch: i64, m: i64, n: i64, k: i64) -> OpSpec {
        assert!(
            batch > 0 && m > 0 && n > 0 && k > 0,
            "GEMM dimensions must be positive"
        );
        OpSpec::Gemm { m, n, k, batch }
    }

    /// Normalize a `ConvSpec` into the explicit workload model: specs
    /// carrying the implicit `groups > 1` encoding become
    /// [`OpSpec::GroupedConv`]; dense specs stay [`OpSpec::Conv`]. This is
    /// the compatibility bridge from graph nodes (which store `ConvSpec`)
    /// to the workload layer, and it is injective, so deduplication and
    /// cache keying over `OpSpec` never merge distinct conv layers.
    #[must_use]
    pub fn from_conv(conv: ConvSpec) -> OpSpec {
        if conv.groups > 1 {
            OpSpec::GroupedConv {
                conv,
                groups: conv.groups,
            }
        } else {
            OpSpec::Conv(conv)
        }
    }

    /// The convolution geometry, if this is a conv-family workload.
    #[must_use]
    pub fn conv(&self) -> Option<&ConvSpec> {
        match self {
            OpSpec::Conv(c) | OpSpec::GroupedConv { conv: c, .. } => Some(c),
            OpSpec::Gemm { .. } => None,
        }
    }

    /// The explicit group count (1 for dense conv and GEMM).
    #[must_use]
    pub fn groups(&self) -> i64 {
        match self {
            OpSpec::GroupedConv { conv, groups } => {
                // The constructors keep the compat field in sync; catch
                // hand-built or deserialized values that break it.
                debug_assert_eq!(
                    conv.groups, *groups,
                    "GroupedConv payload disagrees with conv.groups"
                );
                *groups
            }
            _ => 1,
        }
    }

    /// Whether this is a depthwise convolution (`groups == c == k`),
    /// modeled explicitly rather than inferred from `ConvSpec` internals.
    /// A `groups == c` conv with a depth multiplier (`k > c`) is *not*
    /// depthwise — it keeps per-group output channels and lowers through
    /// the grouped blocked builder.
    #[must_use]
    pub fn is_depthwise(&self) -> bool {
        match self {
            OpSpec::GroupedConv { conv, groups } => {
                *groups == conv.c && *groups > 1 && conv.k == conv.c
            }
            _ => false,
        }
    }

    /// Total multiply-accumulates at batch 1 (graph batch; GEMM `batch`
    /// instances all count).
    #[must_use]
    pub fn macs(&self) -> i64 {
        match self {
            OpSpec::Conv(c) | OpSpec::GroupedConv { conv: c, .. } => c.macs(),
            OpSpec::Gemm { m, n, k, batch } => batch * m * n * k,
        }
    }

    /// Input operand elements (activations / left matrix).
    #[must_use]
    pub fn input_elems(&self) -> i64 {
        match self {
            OpSpec::Conv(c) | OpSpec::GroupedConv { conv: c, .. } => c.input_elems(),
            OpSpec::Gemm { m, k, batch, .. } => batch * m * k,
        }
    }

    /// Weight operand elements (kernels / right matrix).
    #[must_use]
    pub fn weight_elems(&self) -> i64 {
        match self {
            OpSpec::Conv(c) | OpSpec::GroupedConv { conv: c, .. } => c.weight_elems(),
            OpSpec::Gemm { n, k, batch, .. } => batch * k * n,
        }
    }

    /// Output operand elements.
    #[must_use]
    pub fn output_elems(&self) -> i64 {
        match self {
            OpSpec::Conv(c) | OpSpec::GroupedConv { conv: c, .. } => c.output_elems(),
            OpSpec::Gemm { m, n, batch, .. } => batch * m * n,
        }
    }

    /// Stable text encoding used by the `unit-serve` artifact-store file
    /// format: every field of the workload identity, colon-separated.
    /// Round-trips exactly through [`OpSpec::decode`]; change only
    /// together with the store's format version.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            OpSpec::Conv(c) | OpSpec::GroupedConv { conv: c, .. } => format!(
                "conv:{}:{}:{}:{}:{}:{}:{}:{}:{}:{}",
                c.c, c.ihw, c.id, c.k, c.r, c.rw, c.stride, c.pad, c.pad_w, c.groups
            ),
            OpSpec::Gemm { m, n, k, batch } => format!("gemm:{batch}:{m}:{n}:{k}"),
        }
    }

    /// Parse the [`OpSpec::encode`] encoding. Unlike the panicking
    /// constructors, this validates untrusted (on-disk) input and returns
    /// errors instead.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed field.
    pub fn decode(s: &str) -> Result<OpSpec, String> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or_default();
        let mut next = |what: &str| -> Result<i64, String> {
            parts
                .next()
                .ok_or_else(|| format!("workload `{s}`: missing {what}"))?
                .parse::<i64>()
                .map_err(|e| format!("workload `{s}`: bad {what}: {e}"))
        };
        let spec = match head {
            "conv" => {
                let conv = ConvSpec {
                    c: next("c")?,
                    ihw: next("ihw")?,
                    id: next("id")?,
                    k: next("k")?,
                    r: next("r")?,
                    rw: next("rw")?,
                    stride: next("stride")?,
                    pad: next("pad")?,
                    pad_w: next("pad_w")?,
                    groups: next("groups")?,
                };
                if conv.c < 1 || conv.ihw < 1 || conv.id < 1 || conv.k < 1 {
                    return Err(format!("workload `{s}`: non-positive dimensions"));
                }
                if conv.r < 1 || conv.rw < 1 || conv.stride < 1 || conv.pad < 0 || conv.pad_w < 0 {
                    return Err(format!("workload `{s}`: bad kernel geometry"));
                }
                if conv.groups < 1 || conv.c % conv.groups != 0 || conv.k % conv.groups != 0 {
                    return Err(format!(
                        "workload `{s}`: groups {} must divide channels {}x{}",
                        conv.groups, conv.c, conv.k
                    ));
                }
                OpSpec::from_conv(conv)
            }
            "gemm" => {
                let (batch, m, n, k) = (next("batch")?, next("m")?, next("n")?, next("k")?);
                if batch < 1 || m < 1 || n < 1 || k < 1 {
                    return Err(format!("workload `{s}`: GEMM dimensions must be positive"));
                }
                OpSpec::Gemm { m, n, k, batch }
            }
            other => return Err(format!("unknown workload kind `{other}`")),
        };
        if parts.next().is_some() {
            return Err(format!("workload `{s}`: trailing fields"));
        }
        Ok(spec)
    }

    /// A short human-readable label used in notes and reports.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            OpSpec::Conv(c) if c.is_3d() => format!(
                "conv3d c{} hw{} d{} k{} r{} s{}",
                c.c, c.ihw, c.id, c.k, c.r, c.stride
            ),
            OpSpec::Conv(c) => format!(
                "conv2d c{} hw{} k{} r{}x{} s{}",
                c.c, c.ihw, c.k, c.r, c.rw, c.stride
            ),
            OpSpec::GroupedConv { conv, .. } if self.is_depthwise() => {
                format!(
                    "dwconv c{} hw{} r{} s{}",
                    conv.c, conv.ihw, conv.r, conv.stride
                )
            }
            OpSpec::GroupedConv { conv, groups } => format!(
                "grouped conv g{} c{} hw{} k{} r{} s{}",
                groups, conv.c, conv.ihw, conv.k, conv.r, conv.stride
            ),
            OpSpec::Gemm { m, n, k, batch } if *batch == 1 => format!("gemm {m}x{n}x{k}"),
            OpSpec::Gemm { m, n, k, batch } => format!("bmm b{batch} {m}x{n}x{k}"),
        }
    }
}

impl From<ConvSpec> for OpSpec {
    fn from(conv: ConvSpec) -> OpSpec {
        OpSpec::from_conv(conv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims_follow_the_conv_formula() {
        // Table I workload #1: C=288, IHW=35, K=384, R=3, stride 2 -> OHW 17.
        let w = ConvSpec::new_2d(288, 35, 384, 3, 2, 0);
        assert_eq!(w.ohw(), 17);
        // Workload #4: C=80, IHW=73, K=192, R=3, stride 1 -> OHW 71.
        let w4 = ConvSpec::new_2d(80, 73, 192, 3, 1, 0);
        assert_eq!(w4.ohw(), 71);
    }

    #[test]
    fn macs_count_depthwise_correctly() {
        let dense = ConvSpec::new_2d(32, 16, 64, 3, 1, 1);
        assert_eq!(dense.macs(), 16 * 16 * 64 * 32 * 9);
        let dw = ConvSpec::grouped_2d(32, 16, 32, 3, 1, 1, 32);
        assert!(dw.is_depthwise());
        assert_eq!(dw.macs(), 16 * 16 * 32 * 9);
    }

    #[test]
    fn op_spec_normalizes_the_implicit_group_encoding() {
        // A groups == c == k ConvSpec (how graph nodes still store
        // depthwise layers) maps onto the explicit GroupedConv variant...
        let dw = OpSpec::from_conv(ConvSpec::grouped_2d(32, 16, 32, 3, 1, 1, 32));
        assert_eq!(dw, OpSpec::depthwise(32, 16, 3, 1, 1));
        assert!(dw.is_depthwise());
        assert_eq!(dw.groups(), 32);
        // ...while dense specs stay in the Conv variant.
        let dense = OpSpec::from_conv(ConvSpec::new_2d(32, 16, 64, 3, 1, 1));
        assert!(matches!(dense, OpSpec::Conv(_)));
        assert_eq!(dense.groups(), 1);
    }

    #[test]
    fn workload_encoding_round_trips_every_variant() {
        let specs = [
            OpSpec::conv2d(64, 14, 64, 3, 1, 1),
            OpSpec::conv3d(16, 28, 8, 32, 3, 1, 1),
            OpSpec::Conv(ConvSpec::new_rect(128, 17, 128, (1, 7), 1, (0, 3))),
            OpSpec::grouped(32, 16, 64, 3, 1, 1, 4),
            OpSpec::depthwise(32, 16, 3, 2, 1),
            OpSpec::gemm(64, 128, 256),
            OpSpec::batched_gemm(4, 64, 64, 32),
        ];
        for spec in specs {
            let enc = spec.encode();
            assert_eq!(OpSpec::decode(&enc).unwrap(), spec, "{enc}");
        }
    }

    #[test]
    fn workload_decoding_rejects_malformed_input() {
        for bad in [
            "",
            "conv",
            "conv:64:14:1:64:3:3:1:1:1",     // missing groups
            "conv:64:14:1:64:3:3:1:1:1:3",   // groups don't divide
            "conv:0:14:1:64:3:3:1:1:1:1",    // non-positive dim
            "conv:64:14:1:64:3:3:0:1:1:1",   // zero stride
            "conv:64:14:1:64:3:3:1:1:1:1:9", // trailing field
            "conv:64:14:1:64:3:x:1:1:1:1",   // non-numeric
            "gemm:0:64:64:64",               // zero batch
            "gemm:1:64:64",                  // missing k
            "pool:1:2",                      // unknown kind
        ] {
            assert!(OpSpec::decode(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn grouped_conv_macs_scale_inversely_with_groups() {
        let dense = OpSpec::conv2d(32, 16, 64, 3, 1, 1);
        let grouped = OpSpec::grouped(32, 16, 64, 3, 1, 1, 4);
        assert_eq!(grouped.groups(), 4);
        assert!(!grouped.is_depthwise());
        assert_eq!(grouped.macs() * 4, dense.macs());
        // groups == 1 normalizes to the dense variant.
        assert_eq!(OpSpec::grouped(32, 16, 64, 3, 1, 1, 1), dense);
    }

    #[test]
    #[should_panic(expected = "divide input channels")]
    fn grouped_conv_rejects_indivisible_channels() {
        let _ = OpSpec::grouped(30, 16, 64, 3, 1, 1, 4);
    }

    #[test]
    fn depth_multiplier_conv_is_grouped_not_depthwise() {
        // groups == c but k == 2c: every group still reduces into two
        // output channels, so no depthwise classification (which would
        // silently drop half the output channels in the lowering).
        let dm = OpSpec::grouped(8, 6, 16, 3, 1, 1, 8);
        assert!(!dm.is_depthwise());
        assert_eq!(dm.groups(), 8);
        assert_eq!(dm.macs(), 6 * 6 * 16 * 9, "k=16 outputs, 1 tap each");
        // And the ConvSpec-level predicate agrees.
        assert!(!dm.conv().unwrap().is_depthwise());
    }

    #[test]
    fn gemm_accounting() {
        let g = OpSpec::gemm(64, 128, 256);
        assert_eq!(g.macs(), 64 * 128 * 256);
        assert_eq!(g.input_elems(), 64 * 256);
        assert_eq!(g.weight_elems(), 256 * 128);
        assert_eq!(g.output_elems(), 64 * 128);
        let b = OpSpec::batched_gemm(8, 64, 32, 64);
        assert_eq!(b.macs(), 8 * 64 * 32 * 64);
        assert_eq!(b.describe(), "bmm b8 64x32x64");
        assert_eq!(g.describe(), "gemm 64x128x256");
        assert!(g.conv().is_none());
    }

    #[test]
    fn op_spec_orders_and_hashes_distinctly() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        assert!(set.insert(OpSpec::conv2d(8, 8, 8, 3, 1, 1)));
        assert!(set.insert(OpSpec::grouped(8, 8, 8, 3, 1, 1, 2)));
        assert!(set.insert(OpSpec::depthwise(8, 8, 3, 1, 1)));
        assert!(set.insert(OpSpec::gemm(8, 8, 8)));
        assert!(set.insert(OpSpec::batched_gemm(2, 8, 8, 8)));
        assert!(!set.insert(OpSpec::gemm(8, 8, 8)), "duplicates collapse");
    }

    #[test]
    fn rectangular_kernels_keep_square_outputs_with_same_padding() {
        // inception-v3's 1x7 conv at 17x17 with (0,3) padding.
        let w = ConvSpec::new_rect(128, 17, 128, (1, 7), 1, (0, 3));
        assert_eq!(w.oh(), 17);
        assert_eq!(w.ow(), 17);
        assert_eq!(w.macs(), 17 * 17 * 128 * 128 * 7);
    }

    #[test]
    fn conv3d_dimensions() {
        let w = ConvSpec::new_3d(64, 56, 8, 64, 3, 1, 1);
        assert!(w.is_3d());
        assert_eq!(w.ohw(), 56);
        assert_eq!(w.od(), 8);
        assert_eq!(w.macs(), 56 * 56 * 8 * 64 * 64 * 27);
    }
}
