//! MobileNet v1 (depthwise-separable stacks) and v2 (inverted residuals).
//!
//! These models matter for the evaluation because their depthwise layers
//! have *no channel reduction*, so no dot-product instruction applies: UNIT
//! falls back to SIMD for them, which is why mobilenet shows the smallest
//! tensorization speedups in Figures 8 and 12.

use unit_dsl::DType;

use crate::ir::{Graph, GraphBuilder, NodeId, OpKind, TensorShape};
use crate::workload::ConvSpec;

/// Graph nodes store `ConvSpec`, so depthwise layers are built as
/// explicit `groups == c == k` grouped specs; the workload layer
/// normalizes them to the `OpSpec::GroupedConv` model.
fn depthwise_3x3(c: i64, hw: i64, stride: i64) -> ConvSpec {
    ConvSpec::grouped_2d(c, hw, c, 3, stride, 1, c)
}

fn classifier(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    let gap = b.add(OpKind::GlobalAvgPool, &[x], "global_pool");
    let flat = b.add(OpKind::Flatten, &[gap], "flatten");
    let fc = b.add(OpKind::Dense { units: 1000 }, &[flat], "fc1000");
    let dq = b.add(OpKind::Dequantize, &[fc], "dequantize");
    b.add(OpKind::Softmax, &[dq], "softmax")
}

/// MobileNet-v1 at width multiplier 1.0, 224x224 input.
#[must_use]
pub fn mobilenet_v1() -> Graph {
    let mut b = GraphBuilder::new("mobilenet-v1");
    let input = b.add(
        OpKind::Input(TensorShape::chw(3, 224, 224, DType::F32)),
        &[],
        "data",
    );
    let q = b.add(OpKind::Quantize, &[input], "quantize");
    let mut x = b.conv_bn_relu(ConvSpec::new_2d(3, 224, 32, 3, 2, 1), q, "conv0");
    let mut hw = 112i64;
    let mut c = 32i64;
    // (output channels, stride) of each depthwise-separable pair.
    let pairs: Vec<(i64, i64)> = vec![
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, (out_c, stride)) in pairs.into_iter().enumerate() {
        let dw = b.conv_bn_relu(depthwise_3x3(c, hw, stride), x, &format!("dw{i}"));
        hw /= stride;
        x = b.conv_bn_relu(
            ConvSpec::new_2d(c, hw, out_c, 1, 1, 0),
            dw,
            &format!("pw{i}"),
        );
        c = out_c;
    }
    let out = classifier(&mut b, x);
    b.finish(out)
}

/// MobileNet-v2 at width multiplier 1.0, 224x224 input.
#[must_use]
pub fn mobilenet_v2() -> Graph {
    let mut b = GraphBuilder::new("mobilenet-v2");
    let input = b.add(
        OpKind::Input(TensorShape::chw(3, 224, 224, DType::F32)),
        &[],
        "data",
    );
    let q = b.add(OpKind::Quantize, &[input], "quantize");
    let mut x = b.conv_bn_relu(ConvSpec::new_2d(3, 224, 32, 3, 2, 1), q, "conv0");
    let mut hw = 112i64;
    let mut c = 32i64;
    // (expansion, output channels, repeats, stride) per inverted-residual
    // stage, from Table 2 of the MobileNet-v2 paper.
    let stages: Vec<(i64, i64, i64, i64)> = vec![
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for (stage, (t, out_c, n, s)) in stages.into_iter().enumerate() {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            let name = format!("ir{stage}_{i}");
            let hidden = c * t;
            let expanded = if t > 1 {
                b.conv_bn_relu(
                    ConvSpec::new_2d(c, hw, hidden, 1, 1, 0),
                    x,
                    &format!("{name}_exp"),
                )
            } else {
                x
            };
            let dw = b.conv_bn_relu(
                depthwise_3x3(hidden, hw, stride),
                expanded,
                &format!("{name}_dw"),
            );
            let new_hw = hw / stride;
            // Linear bottleneck: conv + bias, no relu.
            let pc = b.add(
                OpKind::Conv(ConvSpec::new_2d(hidden, new_hw, out_c, 1, 1, 0)),
                &[dw],
                format!("{name}_proj_conv"),
            );
            let proj = b.add(OpKind::BiasAdd, &[pc], format!("{name}_proj_bias"));
            x = if stride == 1 && c == out_c {
                b.add(OpKind::Add, &[proj, x], format!("{name}_add"))
            } else {
                proj
            };
            hw = new_hw;
            c = out_c;
        }
    }
    x = b.conv_bn_relu(ConvSpec::new_2d(c, hw, 1280, 1, 1, 0), x, "conv_last");
    let out = classifier(&mut b, x);
    b.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_is_mostly_depthwise_separable() {
        let g = mobilenet_v1();
        let convs = g.conv_workloads();
        assert_eq!(convs.len(), 1 + 13 * 2);
        assert_eq!(convs.iter().filter(|w| w.is_depthwise()).count(), 13);
    }

    #[test]
    fn v2_final_feature_map_is_7x7x320_before_the_head() {
        let g = mobilenet_v2();
        let shapes = g.infer_shapes();
        let last_proj = g
            .nodes
            .iter()
            .rev()
            .find(|n| matches!(&n.op, OpKind::Conv(w) if w.k == 320))
            .unwrap();
        assert_eq!(shapes[last_proj.id.0 as usize].dims[1..], [7, 7]);
    }

    #[test]
    fn depthwise_layers_shrink_with_stride() {
        let g = mobilenet_v1();
        let dws: Vec<_> = g
            .conv_workloads()
            .into_iter()
            .filter(|w| w.is_depthwise())
            .collect();
        assert_eq!(dws[0].ihw, 112);
        assert_eq!(dws.last().unwrap().ihw, 7);
    }
}
