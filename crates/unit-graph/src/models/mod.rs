//! The model zoo: the nine CNNs of the paper's evaluation (Section V-C,
//! MXNet model zoo, batch size 1), the conv3d variant of resnet-18 used
//! by the Figure 13 extensibility study, and a GEMM-built transformer
//! encoder ([`transformer_tiny`]) exercising the operator-generic
//! workload model beyond convolutions.

mod inception;
mod mobilenet;
mod resnet;
mod transformer;

pub use inception::{inception_bn, inception_v3};
pub use mobilenet::{mobilenet_v1, mobilenet_v2};
pub use resnet::{res18_3d_convs, resnet, resnet_v1b, ResnetDepth};
pub use transformer::{
    transformer_encoder, transformer_micro, transformer_tiny, TRANSFORMER_TINY_UNIQUE_GEMMS,
};

use crate::ir::Graph;

/// The nine evaluation models in the order the paper's figures plot them.
#[must_use]
pub fn all_models() -> Vec<Graph> {
    vec![
        resnet(ResnetDepth::R18),
        resnet(ResnetDepth::R50),
        resnet_v1b(ResnetDepth::R50),
        inception_bn(),
        inception_v3(),
        resnet(ResnetDepth::R101),
        resnet(ResnetDepth::R152),
        mobilenet_v1(),
        mobilenet_v2(),
    ]
}

/// The figure x-axis labels, aligned with [`all_models`].
#[must_use]
pub fn model_labels() -> Vec<&'static str> {
    vec![
        "resnet-18",
        "resnet-50",
        "resnet-50_v1b",
        "inception-bn",
        "inception-v3",
        "resnet-101",
        "resnet-152",
        "mobilenet-v1",
        "mobilenet-v2",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_models_in_paper_order() {
        let models = all_models();
        assert_eq!(models.len(), 9);
        assert_eq!(models.len(), model_labels().len());
        for (g, label) in models.iter().zip(model_labels()) {
            assert_eq!(g.name, label);
        }
    }

    #[test]
    fn mac_counts_are_in_published_ballparks() {
        // Published GMACs at 224x224: resnet-18 ~1.8, resnet-50 ~4.1,
        // resnet-101 ~7.8, resnet-152 ~11.5, mobilenet-v1 ~0.57,
        // mobilenet-v2 ~0.3, inception-v3 (299) ~5.7, inception-bn ~2.0.
        let checks: Vec<(&str, f64, f64)> = vec![
            ("resnet-18", 1.6, 2.1),
            ("resnet-50", 3.5, 4.5),
            ("resnet-50_v1b", 3.5, 4.7),
            ("inception-bn", 1.2, 2.6),
            ("inception-v3", 4.5, 6.5),
            ("resnet-101", 7.0, 8.5),
            ("resnet-152", 10.5, 12.5),
            ("mobilenet-v1", 0.45, 0.72),
            ("mobilenet-v2", 0.25, 0.45),
        ];
        for (g, (name, lo, hi)) in all_models().iter().zip(checks) {
            let gmacs = g.total_macs() as f64 / 1e9;
            assert!(
                gmacs > lo && gmacs < hi,
                "{name}: {gmacs:.2} GMACs outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn shape_inference_succeeds_on_every_model() {
        for g in all_models() {
            let shapes = g.infer_shapes();
            assert_eq!(shapes.len(), g.nodes.len());
            // Classifier output: 1000 classes.
            assert_eq!(shapes[g.output.0 as usize].dims, vec![1000]);
        }
    }

    #[test]
    fn the_148_conv_workloads_claim_is_near() {
        // "There are 148 different convolution workloads in the models."
        use std::collections::BTreeSet;
        let mut unique = BTreeSet::new();
        for g in all_models() {
            for w in g.conv_workloads() {
                unique.insert(w);
            }
        }
        let n = unique.len();
        assert!(
            (100..=200).contains(&n),
            "expected on the order of 148 unique conv workloads, got {n}"
        );
    }
}
