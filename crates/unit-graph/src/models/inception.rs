//! Inception family: inception-bn (GoogLeNet with batch normalization,
//! Ioffe & Szegedy 2015) and inception-v3 (Szegedy et al. 2016, with the
//! factorized 1x7/7x1 convolutions).

use unit_dsl::DType;

use crate::ir::{Graph, GraphBuilder, NodeId, OpKind, TensorShape};
use crate::workload::ConvSpec;

fn classifier(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    let gap = b.add(OpKind::GlobalAvgPool, &[x], "global_pool");
    let flat = b.add(OpKind::Flatten, &[gap], "flatten");
    let fc = b.add(OpKind::Dense { units: 1000 }, &[flat], "fc1000");
    let dq = b.add(OpKind::Dequantize, &[fc], "dequantize");
    b.add(OpKind::Softmax, &[dq], "softmax")
}

/// One inception-bn block: 1x1 branch, 1x1->3x3 branch, 1x1->3x3->3x3
/// branch, pool->1x1 branch. A channel count of zero omits the branch.
#[allow(clippy::too_many_arguments)]
fn bn_block(
    b: &mut GraphBuilder,
    x: NodeId,
    in_c: i64,
    hw: i64,
    c1: i64,
    c3r: i64,
    c3: i64,
    d3r: i64,
    d3: i64,
    pool_proj: i64,
    stride: i64,
    name: &str,
) -> (NodeId, i64) {
    let mut branches = Vec::new();
    let mut out_c = 0;
    if c1 > 0 {
        branches.push(b.conv_bn_relu(
            ConvSpec::new_2d(in_c, hw, c1, 1, 1, 0),
            x,
            &format!("{name}_1x1"),
        ));
        out_c += c1;
    }
    let r3 = b.conv_bn_relu(
        ConvSpec::new_2d(in_c, hw, c3r, 1, 1, 0),
        x,
        &format!("{name}_3x3r"),
    );
    branches.push(b.conv_bn_relu(
        ConvSpec::new_2d(c3r, hw, c3, 3, stride, 1),
        r3,
        &format!("{name}_3x3"),
    ));
    out_c += c3;
    let d1 = b.conv_bn_relu(
        ConvSpec::new_2d(in_c, hw, d3r, 1, 1, 0),
        x,
        &format!("{name}_d3x3r"),
    );
    let d2 = b.conv_bn_relu(
        ConvSpec::new_2d(d3r, hw, d3, 3, 1, 1),
        d1,
        &format!("{name}_d3x3a"),
    );
    branches.push(b.conv_bn_relu(
        ConvSpec::new_2d(d3, hw, d3, 3, stride, 1),
        d2,
        &format!("{name}_d3x3b"),
    ));
    out_c += d3;
    if pool_proj > 0 {
        let p = b.add(
            OpKind::AvgPool { k: 3, s: 1, pad: 1 },
            &[x],
            format!("{name}_pool"),
        );
        let pp = b.conv_bn_relu(
            ConvSpec::new_2d(in_c, hw, pool_proj, 1, stride, 0),
            p,
            &format!("{name}_proj"),
        );
        branches.push(pp);
        out_c += pool_proj;
    } else {
        // Stride-2 blocks pass the pooled input straight through.
        let p = b.add(
            OpKind::MaxPool {
                k: 3,
                s: stride,
                pad: 1,
            },
            &[x],
            format!("{name}_pool"),
        );
        branches.push(p);
        out_c += in_c;
    }
    (
        b.add(OpKind::Concat, &branches, format!("{name}_concat")),
        out_c,
    )
}

/// inception-bn (BN-GoogLeNet), 224x224 input.
#[must_use]
pub fn inception_bn() -> Graph {
    let mut b = GraphBuilder::new("inception-bn");
    let input = b.add(
        OpKind::Input(TensorShape::chw(3, 224, 224, DType::F32)),
        &[],
        "data",
    );
    let q = b.add(OpKind::Quantize, &[input], "quantize");
    let c1 = b.conv_bn_relu(ConvSpec::new_2d(3, 224, 64, 7, 2, 3), q, "conv1");
    let p1 = b.add(OpKind::MaxPool { k: 3, s: 2, pad: 1 }, &[c1], "pool1");
    let c2r = b.conv_bn_relu(ConvSpec::new_2d(64, 56, 64, 1, 1, 0), p1, "conv2r");
    let c2 = b.conv_bn_relu(ConvSpec::new_2d(64, 56, 192, 3, 1, 1), c2r, "conv2");
    let p2 = b.add(OpKind::MaxPool { k: 3, s: 2, pad: 1 }, &[c2], "pool2");

    // (c1, c3r, c3, d3r, d3, pool_proj, stride)
    let mut x = p2;
    let mut in_c = 192;
    let mut hw = 28;
    let blocks: Vec<(&str, [i64; 6], i64)> = vec![
        ("3a", [64, 64, 64, 64, 96, 32], 1),
        ("3b", [64, 64, 96, 64, 96, 64], 1),
        ("3c", [0, 128, 160, 64, 96, 0], 2),
        ("4a", [224, 64, 96, 96, 128, 128], 1),
        ("4b", [192, 96, 128, 96, 128, 128], 1),
        ("4c", [160, 128, 160, 128, 160, 128], 1),
        ("4d", [96, 128, 192, 160, 192, 128], 1),
        ("4e", [0, 128, 192, 192, 256, 0], 2),
        ("5a", [352, 192, 320, 160, 224, 128], 1),
        ("5b", [352, 192, 320, 192, 224, 128], 1),
    ];
    for (name, [c1, c3r, c3, d3r, d3, proj], stride) in blocks {
        let (nx, nc) = bn_block(
            &mut b, x, in_c, hw, c1, c3r, c3, d3r, d3, proj, stride, name,
        );
        x = nx;
        in_c = nc;
        hw /= stride;
    }
    let out = classifier(&mut b, x);
    b.finish(out)
}

/// inception-v3, 299x299 input, with factorized 5x5 -> two 3x3 and the
/// 1x7/7x1 middle blocks.
#[must_use]
pub fn inception_v3() -> Graph {
    let mut b = GraphBuilder::new("inception-v3");
    let input = b.add(
        OpKind::Input(TensorShape::chw(3, 299, 299, DType::F32)),
        &[],
        "data",
    );
    let q = b.add(OpKind::Quantize, &[input], "quantize");
    // Stem: 299 -> 35x35x192.
    let c1 = b.conv_bn_relu(ConvSpec::new_2d(3, 299, 32, 3, 2, 0), q, "conv1"); // 149
    let c2 = b.conv_bn_relu(ConvSpec::new_2d(32, 149, 32, 3, 1, 0), c1, "conv2"); // 147
    let c3 = b.conv_bn_relu(ConvSpec::new_2d(32, 147, 64, 3, 1, 1), c2, "conv3"); // 147
    let p1 = b.add(OpKind::MaxPool { k: 3, s: 2, pad: 0 }, &[c3], "pool1"); // 73
    let c4 = b.conv_bn_relu(ConvSpec::new_2d(64, 73, 80, 1, 1, 0), p1, "conv4"); // 73
    let c5 = b.conv_bn_relu(ConvSpec::new_2d(80, 73, 192, 3, 1, 0), c4, "conv5"); // 71
    let p2 = b.add(OpKind::MaxPool { k: 3, s: 2, pad: 0 }, &[c5], "pool2"); // 35

    let mut x = p2;
    let mut in_c = 192i64;

    // Three Inception-A blocks at 35x35.
    for (i, pool_c) in [32i64, 64, 64].iter().enumerate() {
        let name = format!("mixed_a{i}");
        let b1 = b.conv_bn_relu(
            ConvSpec::new_2d(in_c, 35, 64, 1, 1, 0),
            x,
            &format!("{name}_1x1"),
        );
        let b5r = b.conv_bn_relu(
            ConvSpec::new_2d(in_c, 35, 48, 1, 1, 0),
            x,
            &format!("{name}_5x5r"),
        );
        let b5 = b.conv_bn_relu(
            ConvSpec::new_2d(48, 35, 64, 5, 1, 2),
            b5r,
            &format!("{name}_5x5"),
        );
        let d1 = b.conv_bn_relu(
            ConvSpec::new_2d(in_c, 35, 64, 1, 1, 0),
            x,
            &format!("{name}_d3r"),
        );
        let d2 = b.conv_bn_relu(
            ConvSpec::new_2d(64, 35, 96, 3, 1, 1),
            d1,
            &format!("{name}_d3a"),
        );
        let d3 = b.conv_bn_relu(
            ConvSpec::new_2d(96, 35, 96, 3, 1, 1),
            d2,
            &format!("{name}_d3b"),
        );
        let p = b.add(
            OpKind::AvgPool { k: 3, s: 1, pad: 1 },
            &[x],
            format!("{name}_pool"),
        );
        let pp = b.conv_bn_relu(
            ConvSpec::new_2d(in_c, 35, *pool_c, 1, 1, 0),
            p,
            &format!("{name}_proj"),
        );
        x = b.add(OpKind::Concat, &[b1, b5, d3, pp], format!("{name}_concat"));
        in_c = 64 + 64 + 96 + pool_c;
    }

    // Reduction-A: 35 -> 17.
    {
        let r3 = b.conv_bn_relu(ConvSpec::new_2d(in_c, 35, 384, 3, 2, 0), x, "red_a_3x3");
        let d1 = b.conv_bn_relu(ConvSpec::new_2d(in_c, 35, 64, 1, 1, 0), x, "red_a_d3r");
        let d2 = b.conv_bn_relu(ConvSpec::new_2d(64, 35, 96, 3, 1, 1), d1, "red_a_d3a");
        let d3 = b.conv_bn_relu(ConvSpec::new_2d(96, 35, 96, 3, 2, 0), d2, "red_a_d3b");
        let p = b.add(OpKind::MaxPool { k: 3, s: 2, pad: 0 }, &[x], "red_a_pool");
        x = b.add(OpKind::Concat, &[r3, d3, p], "red_a_concat");
        in_c += 384 + 96;
    }

    // Four Inception-B blocks at 17x17 with 1x7/7x1 factorization.
    for (i, c7) in [128i64, 160, 160, 192].iter().enumerate() {
        let name = format!("mixed_b{i}");
        let c7 = *c7;
        let b1 = b.conv_bn_relu(
            ConvSpec::new_2d(in_c, 17, 192, 1, 1, 0),
            x,
            &format!("{name}_1x1"),
        );
        let s1 = b.conv_bn_relu(
            ConvSpec::new_2d(in_c, 17, c7, 1, 1, 0),
            x,
            &format!("{name}_7r"),
        );
        let s2 = b.conv_bn_relu(
            ConvSpec::new_rect(c7, 17, c7, (1, 7), 1, (0, 3)),
            s1,
            &format!("{name}_1x7"),
        );
        let s3 = b.conv_bn_relu(
            ConvSpec::new_rect(c7, 17, 192, (7, 1), 1, (3, 0)),
            s2,
            &format!("{name}_7x1"),
        );
        let d1 = b.conv_bn_relu(
            ConvSpec::new_2d(in_c, 17, c7, 1, 1, 0),
            x,
            &format!("{name}_d7r"),
        );
        let d2 = b.conv_bn_relu(
            ConvSpec::new_rect(c7, 17, c7, (7, 1), 1, (3, 0)),
            d1,
            &format!("{name}_d7a"),
        );
        let d3 = b.conv_bn_relu(
            ConvSpec::new_rect(c7, 17, c7, (1, 7), 1, (0, 3)),
            d2,
            &format!("{name}_d7b"),
        );
        let d4 = b.conv_bn_relu(
            ConvSpec::new_rect(c7, 17, c7, (7, 1), 1, (3, 0)),
            d3,
            &format!("{name}_d7c"),
        );
        let d5 = b.conv_bn_relu(
            ConvSpec::new_rect(c7, 17, 192, (1, 7), 1, (0, 3)),
            d4,
            &format!("{name}_d7d"),
        );
        let p = b.add(
            OpKind::AvgPool { k: 3, s: 1, pad: 1 },
            &[x],
            format!("{name}_pool"),
        );
        let pp = b.conv_bn_relu(
            ConvSpec::new_2d(in_c, 17, 192, 1, 1, 0),
            p,
            &format!("{name}_proj"),
        );
        x = b.add(OpKind::Concat, &[b1, s3, d5, pp], format!("{name}_concat"));
        in_c = 192 * 4;
    }

    // Reduction-B: 17 -> 8.
    {
        let t1 = b.conv_bn_relu(ConvSpec::new_2d(in_c, 17, 192, 1, 1, 0), x, "red_b_3r");
        let t2 = b.conv_bn_relu(ConvSpec::new_2d(192, 17, 320, 3, 2, 0), t1, "red_b_3x3");
        let s1 = b.conv_bn_relu(ConvSpec::new_2d(in_c, 17, 192, 1, 1, 0), x, "red_b_7r");
        let s2 = b.conv_bn_relu(
            ConvSpec::new_rect(192, 17, 192, (1, 7), 1, (0, 3)),
            s1,
            "red_b_1x7",
        );
        let s3 = b.conv_bn_relu(
            ConvSpec::new_rect(192, 17, 192, (7, 1), 1, (3, 0)),
            s2,
            "red_b_7x1",
        );
        let s4 = b.conv_bn_relu(ConvSpec::new_2d(192, 17, 192, 3, 2, 0), s3, "red_b_3x3b");
        let p = b.add(OpKind::MaxPool { k: 3, s: 2, pad: 0 }, &[x], "red_b_pool");
        x = b.add(OpKind::Concat, &[t2, s4, p], "red_b_concat");
        in_c += 320 + 192;
    }

    // Two Inception-C blocks at 8x8.
    for i in 0..2 {
        let name = format!("mixed_c{i}");
        let b1 = b.conv_bn_relu(
            ConvSpec::new_2d(in_c, 8, 320, 1, 1, 0),
            x,
            &format!("{name}_1x1"),
        );
        let s1 = b.conv_bn_relu(
            ConvSpec::new_2d(in_c, 8, 384, 1, 1, 0),
            x,
            &format!("{name}_3r"),
        );
        let s2a = b.conv_bn_relu(
            ConvSpec::new_rect(384, 8, 384, (1, 3), 1, (0, 1)),
            s1,
            &format!("{name}_1x3"),
        );
        let s2b = b.conv_bn_relu(
            ConvSpec::new_rect(384, 8, 384, (3, 1), 1, (1, 0)),
            s1,
            &format!("{name}_3x1"),
        );
        let d1 = b.conv_bn_relu(
            ConvSpec::new_2d(in_c, 8, 448, 1, 1, 0),
            x,
            &format!("{name}_d3r"),
        );
        let d2 = b.conv_bn_relu(
            ConvSpec::new_2d(448, 8, 384, 3, 1, 1),
            d1,
            &format!("{name}_d3"),
        );
        let d3a = b.conv_bn_relu(
            ConvSpec::new_rect(384, 8, 384, (1, 3), 1, (0, 1)),
            d2,
            &format!("{name}_d1x3"),
        );
        let d3b = b.conv_bn_relu(
            ConvSpec::new_rect(384, 8, 384, (3, 1), 1, (1, 0)),
            d2,
            &format!("{name}_d3x1"),
        );
        let p = b.add(
            OpKind::AvgPool { k: 3, s: 1, pad: 1 },
            &[x],
            format!("{name}_pool"),
        );
        let pp = b.conv_bn_relu(
            ConvSpec::new_2d(in_c, 8, 192, 1, 1, 0),
            p,
            &format!("{name}_proj"),
        );
        x = b.add(
            OpKind::Concat,
            &[b1, s2a, s2b, d3a, d3b, pp],
            format!("{name}_concat"),
        );
        in_c = 320 + 384 * 4 + 192;
    }

    let out = classifier(&mut b, x);
    b.finish(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inception_bn_shapes_check_out() {
        let g = inception_bn();
        let shapes = g.infer_shapes();
        assert_eq!(shapes[g.output.0 as usize].dims, vec![1000]);
        // 5b output: 1024 channels at 7x7.
        let concat = g
            .nodes
            .iter()
            .rev()
            .find(|n| matches!(n.op, OpKind::Concat))
            .unwrap();
        assert_eq!(shapes[concat.id.0 as usize].dims, vec![1024, 7, 7]);
    }

    #[test]
    fn inception_v3_has_factorized_convs() {
        let g = inception_v3();
        let rect = g.conv_workloads().iter().filter(|w| w.r != w.rw).count();
        assert!(
            rect >= 20,
            "expected many 1x7/7x1/1x3/3x1 layers, got {rect}"
        );
        // Final feature map: 2048 channels at 8x8.
        let shapes = g.infer_shapes();
        let concat = g
            .nodes
            .iter()
            .rev()
            .find(|n| matches!(n.op, OpKind::Concat))
            .unwrap();
        assert_eq!(shapes[concat.id.0 as usize].dims, vec![2048, 8, 8]);
    }
}
