//! ResNet family: resnet-18 (basic blocks), resnet-50/101/152 (bottleneck
//! blocks), the v1b variant (stride moved from the 1x1 to the 3x3), and the
//! conv3d conversion of resnet-18 for Figure 13.

use unit_dsl::DType;

use crate::ir::{Graph, GraphBuilder, NodeId, OpKind, TensorShape};
use crate::workload::ConvSpec;

/// Supported depths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResnetDepth {
    /// resnet-18 (basic blocks, [2, 2, 2, 2]).
    R18,
    /// resnet-50 (bottlenecks, [3, 4, 6, 3]).
    R50,
    /// resnet-101 (bottlenecks, [3, 4, 23, 3]).
    R101,
    /// resnet-152 (bottlenecks, [3, 8, 36, 3]).
    R152,
}

impl ResnetDepth {
    fn label(self) -> &'static str {
        match self {
            ResnetDepth::R18 => "resnet-18",
            ResnetDepth::R50 => "resnet-50",
            ResnetDepth::R101 => "resnet-101",
            ResnetDepth::R152 => "resnet-152",
        }
    }

    fn stage_blocks(self) -> [i64; 4] {
        match self {
            ResnetDepth::R18 => [2, 2, 2, 2],
            ResnetDepth::R50 => [3, 4, 6, 3],
            ResnetDepth::R101 => [3, 4, 23, 3],
            ResnetDepth::R152 => [3, 8, 36, 3],
        }
    }

    fn bottleneck(self) -> bool {
        !matches!(self, ResnetDepth::R18)
    }
}

struct Stem {
    node: NodeId,
    hw: i64,
    channels: i64,
}

fn stem(b: &mut GraphBuilder) -> Stem {
    let input = b.add(
        OpKind::Input(TensorShape::chw(3, 224, 224, DType::F32)),
        &[],
        "data",
    );
    let q = b.add(OpKind::Quantize, &[input], "quantize");
    let c1 = b.conv_bn_relu(ConvSpec::new_2d(3, 224, 64, 7, 2, 3), q, "conv0");
    let pool = b.add(OpKind::MaxPool { k: 3, s: 2, pad: 1 }, &[c1], "pool0");
    Stem {
        node: pool,
        hw: 56,
        channels: 64,
    }
}

fn classifier(b: &mut GraphBuilder, x: NodeId) -> NodeId {
    let gap = b.add(OpKind::GlobalAvgPool, &[x], "global_pool");
    let flat = b.add(OpKind::Flatten, &[gap], "flatten");
    let fc = b.add(OpKind::Dense { units: 1000 }, &[flat], "fc1000");
    let dq = b.add(OpKind::Dequantize, &[fc], "dequantize");
    b.add(OpKind::Softmax, &[dq], "softmax")
}

fn basic_block(
    b: &mut GraphBuilder,
    x: NodeId,
    in_c: i64,
    out_c: i64,
    hw: i64,
    stride: i64,
    name: &str,
) -> NodeId {
    let c1 = b.conv_bn_relu(
        ConvSpec::new_2d(in_c, hw, out_c, 3, stride, 1),
        x,
        &format!("{name}_a"),
    );
    let c2 = b.conv_bn_relu(
        ConvSpec::new_2d(out_c, hw / stride, out_c, 3, 1, 1),
        c1,
        &format!("{name}_b"),
    );
    let shortcut = if stride != 1 || in_c != out_c {
        b.conv_bn_relu(
            ConvSpec::new_2d(in_c, hw, out_c, 1, stride, 0),
            x,
            &format!("{name}_sc"),
        )
    } else {
        x
    };
    b.add(OpKind::Add, &[c2, shortcut], format!("{name}_add"))
}

/// `v1b`: stride lives on the 3x3 (better accuracy, different workload mix).
#[allow(clippy::too_many_arguments)]
fn bottleneck_block(
    b: &mut GraphBuilder,
    x: NodeId,
    in_c: i64,
    mid_c: i64,
    hw: i64,
    stride: i64,
    v1b: bool,
    name: &str,
) -> NodeId {
    let out_c = mid_c * 4;
    let (s1, s2) = if v1b { (1, stride) } else { (stride, 1) };
    let c1 = b.conv_bn_relu(
        ConvSpec::new_2d(in_c, hw, mid_c, 1, s1, 0),
        x,
        &format!("{name}_a"),
    );
    let c2 = b.conv_bn_relu(
        ConvSpec::new_2d(mid_c, hw / s1, mid_c, 3, s2, 1),
        c1,
        &format!("{name}_b"),
    );
    let c3 = b.conv_bn_relu(
        ConvSpec::new_2d(mid_c, hw / stride, out_c, 1, 1, 0),
        c2,
        &format!("{name}_c"),
    );
    let shortcut = if stride != 1 || in_c != out_c {
        b.conv_bn_relu(
            ConvSpec::new_2d(in_c, hw, out_c, 1, stride, 0),
            x,
            &format!("{name}_sc"),
        )
    } else {
        x
    };
    b.add(OpKind::Add, &[c3, shortcut], format!("{name}_add"))
}

fn build(depth: ResnetDepth, v1b: bool) -> Graph {
    let name = if v1b {
        format!("{}_v1b", depth.label())
    } else {
        depth.label().to_string()
    };
    let mut b = GraphBuilder::new(name);
    let s = stem(&mut b);
    let mut x = s.node;
    let mut hw = s.hw;
    let mut in_c = s.channels;
    let widths = [64i64, 128, 256, 512];
    for (stage, (&blocks, &width)) in depth.stage_blocks().iter().zip(widths.iter()).enumerate() {
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            let label = format!("stage{}_block{}", stage + 1, blk + 1);
            if depth.bottleneck() {
                x = bottleneck_block(&mut b, x, in_c, width, hw, stride, v1b, &label);
                in_c = width * 4;
            } else {
                x = basic_block(&mut b, x, in_c, width, hw, stride, &label);
                in_c = width;
            }
            hw /= stride;
        }
    }
    let out = classifier(&mut b, x);
    b.finish(out)
}

/// The standard (v1) ResNet of the given depth.
#[must_use]
pub fn resnet(depth: ResnetDepth) -> Graph {
    build(depth, false)
}

/// The v1b variant (stride on the 3x3 convolution).
#[must_use]
pub fn resnet_v1b(depth: ResnetDepth) -> Graph {
    build(depth, true)
}

/// The Figure 13 workload: the unique convolutions of resnet-18, manually
/// converted to 3D by adding a depth dimension of 8 frames (kernels keep
/// their size, gaining a matching depth tap). Layer 0 is the stem; layers
/// 1-10 are the body and downsample convs.
#[must_use]
pub fn res18_3d_convs() -> Vec<ConvSpec> {
    let g = resnet(ResnetDepth::R18);
    let mut seen = Vec::new();
    for w in g.conv_workloads() {
        if !seen.contains(&w) {
            seen.push(w);
        }
    }
    seen.into_iter()
        .map(|w| ConvSpec::new_3d(w.c, w.ihw, 8, w.k, w.r, w.stride, w.pad))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_has_the_expected_conv_count() {
        let g = resnet(ResnetDepth::R18);
        // 1 stem + 2*2 stages*2 convs + 3 downsamples = 1 + 16 + 3 = 20.
        assert_eq!(g.conv_workloads().len(), 20);
    }

    #[test]
    fn resnet50_has_the_expected_conv_count() {
        let g = resnet(ResnetDepth::R50);
        // 1 stem + (3+4+6+3)*3 + 4 downsamples = 1 + 48 + 4 = 53.
        assert_eq!(g.conv_workloads().len(), 53);
    }

    #[test]
    fn v1b_moves_the_stride_to_the_3x3() {
        let v1 = resnet(ResnetDepth::R50);
        let v1b = resnet_v1b(ResnetDepth::R50);
        let strided_1x1_v1 = v1
            .conv_workloads()
            .iter()
            .filter(|w| w.r == 1 && w.stride == 2 && w.k != w.c * 4)
            .count();
        let strided_3x3_v1b = v1b
            .conv_workloads()
            .iter()
            .filter(|w| w.r == 3 && w.stride == 2)
            .count();
        assert!(strided_1x1_v1 > 0);
        assert_eq!(strided_3x3_v1b, 3); // one per stage 2..4
    }

    #[test]
    fn feature_map_sizes_halve_per_stage() {
        let g = resnet(ResnetDepth::R18);
        let shapes = g.infer_shapes();
        let out = &shapes[g.output.0 as usize];
        assert_eq!(out.dims, vec![1000]);
        // Find the last conv: 7x7 spatial, 512 channels.
        let last_conv = g
            .nodes
            .iter()
            .rev()
            .find(|n| matches!(n.op, OpKind::Conv(_)))
            .unwrap();
        assert_eq!(shapes[last_conv.id.0 as usize].dims[1..], [7, 7]);
    }

    #[test]
    fn res18_3d_produces_eleven_layers() {
        let layers = res18_3d_convs();
        assert_eq!(layers.len(), 11, "Figure 13 plots layers 0..10");
        assert!(layers.iter().all(|w| w.is_3d()));
    }
}
