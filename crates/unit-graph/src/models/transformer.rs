//! A transformer encoder built from [`OpKind::Gemm`] nodes — the first
//! non-CNN model in the zoo, and the proof that the operator-generic
//! workload model carries the pipeline beyond convolutions.
//!
//! Each block is the standard pre-LN-free encoder: Q/K/V projections,
//! batched `QK^T` attention scores (one GEMM instance per head), softmax,
//! batched score-times-V, an output projection, and a two-GEMM FFN, with
//! residual adds and layer norms as memory-bound glue. Every
//! matrix-multiply lands on the same dot-product instructions the CNN
//! layers use; nothing in the Inspector/Rewriter/Tuner knows it is
//! compiling "attention".

use unit_dsl::DType;

use crate::ir::{Graph, GraphBuilder, OpKind, TensorShape};

/// A transformer encoder: `blocks` stacked encoder blocks over a
/// `seq x d_model` token matrix with `heads` attention heads and an
/// `ffn`-wide feed-forward layer.
///
/// # Panics
///
/// Panics unless `heads` divides `d_model`.
#[must_use]
pub fn transformer_encoder(seq: i64, d_model: i64, heads: i64, ffn: i64, blocks: i64) -> Graph {
    assert_eq!(d_model % heads, 0, "heads must divide d_model");
    let d_head = d_model / heads;
    let mut b = GraphBuilder::new(format!(
        "transformer-s{seq}d{d_model}h{heads}f{ffn}x{blocks}"
    ));
    let input = b.add(
        OpKind::Input(TensorShape {
            dims: vec![seq, d_model],
            dtype: DType::F32,
        }),
        &[],
        "tokens",
    );
    let mut x = b.add(OpKind::Quantize, &[input], "quantize");
    for blk in 0..blocks {
        let name = format!("block{}", blk + 1);
        let proj = (seq, d_model, d_model);
        let q = b.gemm_bias(proj, x, &format!("{name}_q"));
        let k = b.gemm_bias(proj, x, &format!("{name}_k"));
        let v = b.gemm_bias(proj, x, &format!("{name}_v"));
        // One GEMM instance per head: seq x seq scores over d_head.
        let scores = b.gemm((seq, seq, d_head), heads, &[q, k], format!("{name}_scores"));
        let probs = b.add(OpKind::Softmax, &[scores], format!("{name}_softmax"));
        let attn = b.gemm(
            (seq, d_head, seq),
            heads,
            &[probs, v],
            format!("{name}_attn"),
        );
        let out = b.gemm_bias(proj, attn, &format!("{name}_out"));
        let res1 = b.add(OpKind::Add, &[out, x], format!("{name}_res1"));
        let ln1 = b.add(OpKind::LayerNorm, &[res1], format!("{name}_ln1"));
        let f1 = b.gemm_bias((seq, ffn, d_model), ln1, &format!("{name}_ffn1"));
        let act = b.add(OpKind::Relu, &[f1], format!("{name}_ffn_relu"));
        let f2 = b.gemm_bias((seq, d_model, ffn), act, &format!("{name}_ffn2"));
        let res2 = b.add(OpKind::Add, &[f2, ln1], format!("{name}_res2"));
        x = b.add(OpKind::LayerNorm, &[res2], format!("{name}_ln2"));
    }
    let out = b.add(OpKind::Dequantize, &[x], "dequantize");
    b.finish(out)
}

/// The CI-sized encoder: one block, 64 tokens, `d_model` 128, 4 heads,
/// FFN 256 — small enough to compile end-to-end on every platform in the
/// smoke suites, big enough that all five distinct GEMM shapes appear.
#[must_use]
pub fn transformer_tiny() -> Graph {
    let mut g = transformer_encoder(64, 128, 4, 256, 1);
    g.name = "transformer-tiny".to_string();
    g
}

/// The smoke-sized encoder: one block, 8 tokens, `d_model` 16, 2 heads,
/// FFN 32 — structurally identical to [`transformer_tiny`] (same eight
/// GEMM steps, same epilogue chains, same kernel dedup), ~500x fewer
/// MACs. The interpreted smoke paths (HTTP front-end, dev-profile test
/// runs) serve this one; optimized builds serve the full tiny model.
#[must_use]
pub fn transformer_micro() -> Graph {
    let mut g = transformer_encoder(8, 16, 2, 32, 1);
    g.name = "transformer-micro".to_string();
    g
}

/// Nodes `transformer_tiny` relies on downstream (kept in sync with the
/// builder): one attention GEMM workload per direction, four projection
/// uses of one shape, two FFN shapes.
pub const TRANSFORMER_TINY_UNIQUE_GEMMS: usize = 5;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::OpSpec;

    #[test]
    fn encoder_macs_match_the_closed_form() {
        let (seq, d_model, heads, ffn) = (64, 128, 4, 256);
        let g = transformer_encoder(seq, d_model, heads, ffn, 1);
        // 4 projections + QK^T + scores*V + 2 FFN GEMMs.
        let expect =
            4 * seq * d_model * d_model + 2 * seq * seq * d_model + 2 * seq * d_model * ffn;
        assert_eq!(g.total_macs(), expect);
        // Two blocks double it.
        let g2 = transformer_encoder(seq, d_model, heads, ffn, 2);
        assert_eq!(g2.total_macs(), 2 * expect);
    }

    #[test]
    fn tiny_encoder_has_five_unique_gemm_workloads() {
        let g = transformer_tiny();
        assert!(g.conv_workloads().is_empty(), "no convolutions anywhere");
        let all = g.op_workloads();
        assert_eq!(all.len(), 8, "8 GEMM nodes per block");
        let unique = crate::compile::unique_workloads(&[&g]);
        assert_eq!(unique.len(), TRANSFORMER_TINY_UNIQUE_GEMMS);
        assert!(unique.iter().all(|w| matches!(w, OpSpec::Gemm { .. })));
        // The attention matmuls are batched per head.
        assert_eq!(
            unique
                .iter()
                .filter(|w| matches!(w, OpSpec::Gemm { batch, .. } if *batch == 4))
                .count(),
            2
        );
    }

    #[test]
    fn shapes_flow_through_attention() {
        let g = transformer_tiny();
        let shapes = g.infer_shapes();
        let scores = g
            .nodes
            .iter()
            .find(|n| n.name == "block1_scores")
            .expect("scores node exists");
        assert_eq!(shapes[scores.id.0 as usize].dims, vec![4, 64, 64]);
        let out = &shapes[g.output.0 as usize];
        assert_eq!(out.dims, vec![64, 128]);
        assert_eq!(out.dtype, DType::F32);
    }

    #[test]
    fn heads_must_divide_d_model() {
        let r = std::panic::catch_unwind(|| transformer_encoder(8, 30, 4, 16, 1));
        assert!(r.is_err());
    }
}
