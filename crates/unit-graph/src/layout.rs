//! Blocked-layout `ComputeOp` builders: the bridge from graph level to the
//! tensor DSL.
//!
//! Following the paper's Section V-C, activations adopt a channel-blocked
//! `NCHW[c]c` layout and kernels a doubly-blocked `KCRS[k]k[c]c` layout,
//! where the channel block equals the instruction's reduction width and the
//! output-channel block equals its lane count. Channels are padded up to
//! the block sizes at graph level, so every tensorized loop tiles exactly
//! (no residue guards inside the hot nest).

use unit_dsl::{ComputeOp, DType, InitExpr, OpBuilder};

use crate::workload::ConvSpec;

/// Round `v` up to a multiple of `block`.
#[must_use]
pub fn round_up(v: i64, block: i64) -> i64 {
    (v + block - 1) / block * block
}

/// A quantized blocked 2D convolution:
/// `out[ko, x, y, ki] += i32(data[co, x*s + r, y*s + sy, ci]) * i32(w[ko, co, r, sy, ki, ci])`.
///
/// `lanes` is the instruction's output lane count (output-channel block)
/// and `rwidth` its reduction width (input-channel block). `data_dtype` and
/// `weight_dtype` select the platform's quantization convention
/// (u8 x i8 for VNNI, i8 x i8 for ARM `sdot`).
///
/// # Panics
///
/// Panics for depthwise specs; use [`depthwise_conv_op`].
#[must_use]
pub fn blocked_conv2d(
    spec: &ConvSpec,
    lanes: i64,
    rwidth: i64,
    data_dtype: DType,
    weight_dtype: DType,
) -> ComputeOp {
    assert!(
        !spec.is_depthwise(),
        "use depthwise_conv_op for depthwise layers"
    );
    assert!(!spec.is_3d(), "use blocked_conv3d for 3D layers");
    let cb = round_up(spec.c, rwidth) / rwidth;
    let kb = round_up(spec.k, lanes) / lanes;
    let ih = spec.ihw + 2 * spec.pad;
    let iw = spec.ihw + 2 * spec.pad_w;
    let acc = data_dtype.accumulator();

    let mut b = OpBuilder::new(format!(
        "conv2d_c{}hw{}k{}r{}x{}s{}",
        spec.c, spec.ihw, spec.k, spec.r, spec.rw, spec.stride
    ));
    let data = b.tensor("data", &[cb, ih, iw, rwidth], data_dtype);
    let weight = b.tensor(
        "weight",
        &[kb, cb, spec.r, spec.rw, lanes, rwidth],
        weight_dtype,
    );
    let ko = b.axis("ko", kb);
    let x = b.axis("x", spec.oh());
    let y = b.axis("y", spec.ow());
    let ki = b.axis("ki", lanes);
    let co = b.reduce_axis("co", cb);
    let r = b.reduce_axis("r", spec.r);
    let s = b.reduce_axis("s", spec.rw);
    let ci = b.reduce_axis("ci", rwidth);
    let elem = b
        .load(
            data,
            vec![
                co.into(),
                (x * spec.stride + r),
                (y * spec.stride + s),
                ci.into(),
            ],
        )
        .cast(acc)
        * b.load(
            weight,
            vec![
                ko.into(),
                co.into(),
                r.into(),
                s.into(),
                ki.into(),
                ci.into(),
            ],
        )
        .cast(acc);
    b.compute(
        "out",
        acc,
        vec![ko.into(), x.into(), y.into(), ki.into()],
        InitExpr::Identity,
        elem,
    )
}

/// A quantized blocked 3D convolution (the Figure 13 extensibility study).
/// Identical structure to [`blocked_conv2d`] with a depth dimension — no
/// change to UNIT is needed, which is the point of the experiment.
#[must_use]
pub fn blocked_conv3d(
    spec: &ConvSpec,
    lanes: i64,
    rwidth: i64,
    data_dtype: DType,
    weight_dtype: DType,
) -> ComputeOp {
    assert!(spec.is_3d(), "blocked_conv3d requires a 3D spec");
    let cb = round_up(spec.c, rwidth) / rwidth;
    let kb = round_up(spec.k, lanes) / lanes;
    let ih = spec.ihw + 2 * spec.pad;
    let idd = spec.id + 2 * spec.pad;
    let ohw = spec.ohw();
    let od = spec.od();
    let acc = data_dtype.accumulator();

    let mut b = OpBuilder::new(format!(
        "conv3d_c{}hw{}d{}k{}r{}",
        spec.c, spec.ihw, spec.id, spec.k, spec.r
    ));
    let data = b.tensor("data", &[cb, idd, ih, ih, rwidth], data_dtype);
    let weight = b.tensor(
        "weight",
        &[kb, cb, spec.r, spec.r, spec.r, lanes, rwidth],
        weight_dtype,
    );
    let ko = b.axis("ko", kb);
    let z = b.axis("z", od);
    let x = b.axis("x", ohw);
    let y = b.axis("y", ohw);
    let ki = b.axis("ki", lanes);
    let co = b.reduce_axis("co", cb);
    let rd = b.reduce_axis("rd", spec.r);
    let r = b.reduce_axis("r", spec.r);
    let s = b.reduce_axis("s", spec.r);
    let ci = b.reduce_axis("ci", rwidth);
    let elem = b
        .load(
            data,
            vec![
                co.into(),
                (z * spec.stride + rd),
                (x * spec.stride + r),
                (y * spec.stride + s),
                ci.into(),
            ],
        )
        .cast(acc)
        * b.load(
            weight,
            vec![
                ko.into(),
                co.into(),
                rd.into(),
                r.into(),
                s.into(),
                ki.into(),
                ci.into(),
            ],
        )
        .cast(acc);
    b.compute(
        "out",
        acc,
        vec![ko.into(), z.into(), x.into(), y.into(), ki.into()],
        InitExpr::Identity,
        elem,
    )
}

/// A quantized blocked dense (fully connected) layer.
#[must_use]
pub fn blocked_dense(
    in_features: i64,
    units: i64,
    lanes: i64,
    rwidth: i64,
    data_dtype: DType,
    weight_dtype: DType,
) -> ComputeOp {
    let cb = round_up(in_features, rwidth) / rwidth;
    let ub = round_up(units, lanes) / lanes;
    let acc = data_dtype.accumulator();
    let mut b = OpBuilder::new(format!("dense_{in_features}x{units}"));
    let data = b.tensor("data", &[cb, rwidth], data_dtype);
    let weight = b.tensor("weight", &[ub, cb, lanes, rwidth], weight_dtype);
    let uo = b.axis("uo", ub);
    let ui = b.axis("ui", lanes);
    let co = b.reduce_axis("co", cb);
    let ci = b.reduce_axis("ci", rwidth);
    let elem = b.load(data, vec![co.into(), ci.into()]).cast(acc)
        * b.load(weight, vec![uo.into(), co.into(), ui.into(), ci.into()])
            .cast(acc);
    b.compute(
        "out",
        acc,
        vec![uo.into(), ui.into()],
        InitExpr::Identity,
        elem,
    )
}

/// A depthwise convolution: no reduction over channels, so *no* dot-product
/// instruction applies — the Inspector rejects it and the compiler falls
/// back to a SIMD schedule. This is why mobilenet speedups are the smallest
/// in Figure 8 (most of its time is depthwise + pointwise layers).
#[must_use]
pub fn depthwise_conv_op(spec: &ConvSpec, data_dtype: DType) -> ComputeOp {
    assert!(spec.is_depthwise(), "spec is not depthwise");
    let ih = spec.ihw + 2 * spec.pad;
    let ohw = spec.ohw();
    let acc = data_dtype.accumulator();
    let mut b = OpBuilder::new(format!("dwconv_c{}hw{}r{}", spec.c, spec.ihw, spec.r));
    let data = b.tensor("data", &[spec.c, ih, ih], data_dtype);
    let weight = b.tensor("weight", &[spec.c, spec.r, spec.r], data_dtype);
    let c = b.axis("c", spec.c);
    let x = b.axis("x", ohw);
    let y = b.axis("y", ohw);
    let r = b.reduce_axis("r", spec.r);
    let s = b.reduce_axis("s", spec.r);
    let elem = b
        .load(
            data,
            vec![c.into(), (x * spec.stride + r), (y * spec.stride + s)],
        )
        .cast(acc)
        * b.load(weight, vec![c.into(), r.into(), s.into()]).cast(acc);
    b.compute(
        "out",
        acc,
        vec![c.into(), x.into(), y.into()],
        InitExpr::Identity,
        elem,
    )
}

/// An fp16 convolution as implicit GEMM (the Tensor Core path): rows are
/// the padded `OH*OW` image positions, columns the padded output channels,
/// and the reduction spans `C*R*S`.
#[must_use]
pub fn conv_gemm_f16(spec: &ConvSpec) -> ComputeOp {
    let rows = round_up(spec.oh() * spec.ow(), 16);
    let cols = round_up(spec.k, 16);
    let red = round_up(spec.c * spec.r * spec.rw, 16);
    let mut b = OpBuilder::new(format!(
        "conv_gemm_c{}hw{}k{}r{}s{}",
        spec.c, spec.ihw, spec.k, spec.r, spec.stride
    ));
    let a = b.tensor("im2col", &[rows, red], DType::F16);
    let w = b.tensor("weight", &[red, cols], DType::F16);
    let i = b.axis("i", rows);
    let j = b.axis("j", cols);
    let k = b.reduce_axis("k", red);
    let elem = b.load(a, vec![i.into(), k.into()]).cast(DType::F32)
        * b.load(w, vec![k.into(), j.into()]).cast(DType::F32);
    b.compute(
        "out",
        DType::F32,
        vec![i.into(), j.into()],
        InitExpr::Identity,
        elem,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::pipeline::{Target, Tensorizer};

    #[test]
    fn round_up_behaves() {
        assert_eq!(round_up(30, 16), 32);
        assert_eq!(round_up(32, 16), 32);
        assert_eq!(round_up(1, 4), 4);
    }

    #[test]
    fn blocked_conv_tensorizes_with_vnni() {
        let spec = ConvSpec::new_2d(128, 14, 128, 3, 1, 1);
        let op = blocked_conv2d(&spec, 16, 4, DType::U8, DType::I8);
        let t = Tensorizer::new(Target::x86_avx512_vnni());
        let (intrin, m) = t.inspect(&op).unwrap();
        assert_eq!(intrin.name, "llvm.x86.avx512.vpdpbusd.512");
        // ki -> lanes, ci -> reduction groups.
        let names: Vec<String> = m
            .mapping
            .iter()
            .map(|(a, _)| op.axis(*a).unwrap().name.clone())
            .collect();
        assert_eq!(names, vec!["ki", "ci"]);
    }

    #[test]
    fn blocked_conv3d_tensorizes_without_changes() {
        let spec = ConvSpec::new_3d(64, 14, 8, 64, 3, 1, 1);
        let op = blocked_conv3d(&spec, 16, 4, DType::U8, DType::I8);
        let t = Tensorizer::new(Target::x86_avx512_vnni());
        assert!(t.inspect(&op).is_ok());
    }

    #[test]
    fn depthwise_is_rejected_by_the_inspector() {
        let spec = ConvSpec::depthwise(64, 14, 3, 1, 1);
        let op = depthwise_conv_op(&spec, DType::U8);
        let t = Tensorizer::new(Target::x86_avx512_vnni());
        assert!(t.inspect(&op).is_err());
    }

    #[test]
    fn gemm_view_tensorizes_with_wmma() {
        let spec = ConvSpec::new_2d(256, 14, 256, 3, 1, 1);
        let op = conv_gemm_f16(&spec);
        let t = Tensorizer::new(Target::nvidia_tensor_core());
        let (intrin, _) = t.inspect(&op).unwrap();
        assert!(intrin.name.contains("m16n16k16"));
    }

    #[test]
    fn blocked_dense_tensorizes() {
        let op = blocked_dense(2048, 1000, 16, 4, DType::U8, DType::I8);
        let t = Tensorizer::new(Target::x86_avx512_vnni());
        assert!(t.inspect(&op).is_ok());
        assert_eq!(op.output_decl().shape, vec![63, 16]); // 1008 padded units
    }

    #[test]
    fn blocked_conv_correctness_via_full_pipeline() {
        use unit_interp::{alloc_buffers, random_fill, run, run_reference};
        let spec = ConvSpec::new_2d(8, 6, 16, 3, 1, 1);
        let op = blocked_conv2d(&spec, 16, 4, DType::U8, DType::I8);
        let k = Tensorizer::new(Target::x86_avx512_vnni())
            .compile(&op)
            .unwrap();
        let mut bufs = alloc_buffers(&k.func);
        random_fill(&mut bufs, 2024);
        let mut reference = bufs.clone();
        run(&k.func, &mut bufs).unwrap();
        run_reference(&op, &mut reference).unwrap();
        assert_eq!(bufs[op.output.0 as usize], reference[op.output.0 as usize]);
    }
}
