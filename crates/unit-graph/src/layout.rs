//! Blocked-layout `ComputeOp` builders: the bridge from graph level to the
//! tensor DSL.
//!
//! Following the paper's Section V-C, activations adopt a channel-blocked
//! `NCHW[c]c` layout and kernels a doubly-blocked `KCRS[k]k[c]c` layout,
//! where the channel block equals the instruction's reduction width and the
//! output-channel block equals its lane count. Channels are padded up to
//! the block sizes at graph level, so every tensorized loop tiles exactly
//! (no residue guards inside the hot nest).

use unit_core::tuner::ConvGpuHint;
use unit_dsl::{ComputeOp, DType, InitExpr, OpBuilder};
use unit_isa::TargetDesc;

use crate::workload::{ConvSpec, OpSpec};

/// Round `v` up to a multiple of `block`.
#[must_use]
pub fn round_up(v: i64, block: i64) -> i64 {
    (v + block - 1) / block * block
}

/// A quantized blocked 2D convolution:
/// `out[ko, x, y, ki] += i32(data[co, x*s + r, y*s + sy, ci]) * i32(w[ko, co, r, sy, ki, ci])`.
///
/// `lanes` is the instruction's output lane count (output-channel block)
/// and `rwidth` its reduction width (input-channel block). `data_dtype` and
/// `weight_dtype` select the platform's quantization convention
/// (u8 x i8 for VNNI, i8 x i8 for ARM `sdot`).
///
/// # Panics
///
/// Panics for depthwise specs; use [`depthwise_conv_op`].
#[must_use]
pub fn blocked_conv2d(
    spec: &ConvSpec,
    lanes: i64,
    rwidth: i64,
    data_dtype: DType,
    weight_dtype: DType,
) -> ComputeOp {
    assert!(
        !spec.is_depthwise(),
        "use depthwise_conv_op for depthwise layers"
    );
    assert!(!spec.is_3d(), "use blocked_conv3d for 3D layers");
    let cb = round_up(spec.c, rwidth) / rwidth;
    let kb = round_up(spec.k, lanes) / lanes;
    let ih = spec.ihw + 2 * spec.pad;
    let iw = spec.ihw + 2 * spec.pad_w;
    let acc = data_dtype.accumulator();

    let mut b = OpBuilder::new(format!(
        "conv2d_c{}hw{}k{}r{}x{}s{}",
        spec.c, spec.ihw, spec.k, spec.r, spec.rw, spec.stride
    ));
    let data = b.tensor("data", &[cb, ih, iw, rwidth], data_dtype);
    let weight = b.tensor(
        "weight",
        &[kb, cb, spec.r, spec.rw, lanes, rwidth],
        weight_dtype,
    );
    let ko = b.axis("ko", kb);
    let x = b.axis("x", spec.oh());
    let y = b.axis("y", spec.ow());
    let ki = b.axis("ki", lanes);
    let co = b.reduce_axis("co", cb);
    let r = b.reduce_axis("r", spec.r);
    let s = b.reduce_axis("s", spec.rw);
    let ci = b.reduce_axis("ci", rwidth);
    let elem = b
        .load(
            data,
            vec![
                co.into(),
                (x * spec.stride + r),
                (y * spec.stride + s),
                ci.into(),
            ],
        )
        .cast(acc)
        * b.load(
            weight,
            vec![
                ko.into(),
                co.into(),
                r.into(),
                s.into(),
                ki.into(),
                ci.into(),
            ],
        )
        .cast(acc);
    b.compute(
        "out",
        acc,
        vec![ko.into(), x.into(), y.into(), ki.into()],
        InitExpr::Identity,
        elem,
    )
}

/// A quantized blocked 3D convolution (the Figure 13 extensibility study).
/// Identical structure to [`blocked_conv2d`] with a depth dimension — no
/// change to UNIT is needed, which is the point of the experiment.
#[must_use]
pub fn blocked_conv3d(
    spec: &ConvSpec,
    lanes: i64,
    rwidth: i64,
    data_dtype: DType,
    weight_dtype: DType,
) -> ComputeOp {
    assert!(spec.is_3d(), "blocked_conv3d requires a 3D spec");
    let cb = round_up(spec.c, rwidth) / rwidth;
    let kb = round_up(spec.k, lanes) / lanes;
    let ih = spec.ihw + 2 * spec.pad;
    let idd = spec.id + 2 * spec.pad;
    let ohw = spec.ohw();
    let od = spec.od();
    let acc = data_dtype.accumulator();

    let mut b = OpBuilder::new(format!(
        "conv3d_c{}hw{}d{}k{}r{}",
        spec.c, spec.ihw, spec.id, spec.k, spec.r
    ));
    let data = b.tensor("data", &[cb, idd, ih, ih, rwidth], data_dtype);
    let weight = b.tensor(
        "weight",
        &[kb, cb, spec.r, spec.r, spec.r, lanes, rwidth],
        weight_dtype,
    );
    let ko = b.axis("ko", kb);
    let z = b.axis("z", od);
    let x = b.axis("x", ohw);
    let y = b.axis("y", ohw);
    let ki = b.axis("ki", lanes);
    let co = b.reduce_axis("co", cb);
    let rd = b.reduce_axis("rd", spec.r);
    let r = b.reduce_axis("r", spec.r);
    let s = b.reduce_axis("s", spec.r);
    let ci = b.reduce_axis("ci", rwidth);
    let elem = b
        .load(
            data,
            vec![
                co.into(),
                (z * spec.stride + rd),
                (x * spec.stride + r),
                (y * spec.stride + s),
                ci.into(),
            ],
        )
        .cast(acc)
        * b.load(
            weight,
            vec![
                ko.into(),
                co.into(),
                rd.into(),
                r.into(),
                s.into(),
                ki.into(),
                ci.into(),
            ],
        )
        .cast(acc);
    b.compute(
        "out",
        acc,
        vec![ko.into(), z.into(), x.into(), y.into(), ki.into()],
        InitExpr::Identity,
        elem,
    )
}

/// A quantized blocked dense (fully connected) layer.
#[must_use]
pub fn blocked_dense(
    in_features: i64,
    units: i64,
    lanes: i64,
    rwidth: i64,
    data_dtype: DType,
    weight_dtype: DType,
) -> ComputeOp {
    let cb = round_up(in_features, rwidth) / rwidth;
    let ub = round_up(units, lanes) / lanes;
    let acc = data_dtype.accumulator();
    let mut b = OpBuilder::new(format!("dense_{in_features}x{units}"));
    let data = b.tensor("data", &[cb, rwidth], data_dtype);
    let weight = b.tensor("weight", &[ub, cb, lanes, rwidth], weight_dtype);
    let uo = b.axis("uo", ub);
    let ui = b.axis("ui", lanes);
    let co = b.reduce_axis("co", cb);
    let ci = b.reduce_axis("ci", rwidth);
    let elem = b.load(data, vec![co.into(), ci.into()]).cast(acc)
        * b.load(weight, vec![uo.into(), co.into(), ui.into(), ci.into()])
            .cast(acc);
    b.compute(
        "out",
        acc,
        vec![uo.into(), ui.into()],
        InitExpr::Identity,
        elem,
    )
}

/// A depthwise convolution: no reduction over channels, so *no* dot-product
/// instruction applies — the Inspector rejects it and the compiler falls
/// back to a SIMD schedule. This is why mobilenet speedups are the smallest
/// in Figure 8 (most of its time is depthwise + pointwise layers).
#[must_use]
pub fn depthwise_conv_op(spec: &ConvSpec, data_dtype: DType) -> ComputeOp {
    assert!(spec.is_depthwise(), "spec is not depthwise");
    let ih = spec.ihw + 2 * spec.pad;
    let ohw = spec.ohw();
    let acc = data_dtype.accumulator();
    let mut b = OpBuilder::new(format!("dwconv_c{}hw{}r{}", spec.c, spec.ihw, spec.r));
    let data = b.tensor("data", &[spec.c, ih, ih], data_dtype);
    let weight = b.tensor("weight", &[spec.c, spec.r, spec.r], data_dtype);
    let c = b.axis("c", spec.c);
    let x = b.axis("x", ohw);
    let y = b.axis("y", ohw);
    let r = b.reduce_axis("r", spec.r);
    let s = b.reduce_axis("s", spec.r);
    let elem = b
        .load(
            data,
            vec![c.into(), (x * spec.stride + r), (y * spec.stride + s)],
        )
        .cast(acc)
        * b.load(weight, vec![c.into(), r.into(), s.into()]).cast(acc);
    b.compute(
        "out",
        acc,
        vec![c.into(), x.into(), y.into()],
        InitExpr::Identity,
        elem,
    )
}

/// A convolution as implicit GEMM in a matrix-unit target's convention
/// (`tile`-padded rows/columns, `red`-padded reduction, `data_dtype` x
/// `weight_dtype` operands accumulating in `data_dtype.accumulator()`):
/// rows are the padded `OH*OW` image positions, columns the padded output
/// channels, and the reduction spans `C*R*S`.
#[must_use]
pub fn conv_gemm(
    spec: &ConvSpec,
    tile: i64,
    red_tile: i64,
    data_dtype: DType,
    weight_dtype: DType,
) -> ComputeOp {
    let rows = round_up(spec.oh() * spec.ow(), tile);
    let cols = round_up(spec.k, tile);
    let red = round_up(spec.c * spec.r * spec.rw, red_tile);
    let acc = data_dtype.accumulator();
    let mut b = OpBuilder::new(format!(
        "conv_gemm_c{}hw{}k{}r{}s{}",
        spec.c, spec.ihw, spec.k, spec.r, spec.stride
    ));
    let a = b.tensor("im2col", &[rows, red], data_dtype);
    let w = b.tensor("weight", &[red, cols], weight_dtype);
    let i = b.axis("i", rows);
    let j = b.axis("j", cols);
    let k = b.reduce_axis("k", red);
    let elem = b.load(a, vec![i.into(), k.into()]).cast(acc)
        * b.load(w, vec![k.into(), j.into()]).cast(acc);
    b.compute(
        "out",
        acc,
        vec![i.into(), j.into()],
        InitExpr::Identity,
        elem,
    )
}

/// An fp16 convolution as implicit GEMM in the 16x16x16 WMMA convention
/// (the built-in Tensor Core path).
#[must_use]
pub fn conv_gemm_f16(spec: &ConvSpec) -> ComputeOp {
    conv_gemm(spec, 16, 16, DType::F16, DType::F16)
}

/// A quantized blocked *grouped* 2D convolution: `groups` independent
/// convolutions over `c/groups` input and `k/groups` output channels each,
/// with the group index as an outer data-parallel axis. The inner
/// reduction nest is identical to [`blocked_conv2d`]'s, so the same
/// dot-product instructions apply per group — no Inspector changes needed
/// (groups with very few channels per group simply pay more padding).
///
/// # Panics
///
/// Panics for depthwise specs (no channel reduction survives; use
/// [`depthwise_conv_op`]) and for 3D or non-divisible geometries.
#[must_use]
pub fn blocked_grouped_conv2d(
    spec: &ConvSpec,
    groups: i64,
    lanes: i64,
    rwidth: i64,
    data_dtype: DType,
    weight_dtype: DType,
) -> ComputeOp {
    assert!(groups > 1, "use blocked_conv2d for dense layers");
    assert!(
        !(groups == spec.c && spec.k == spec.c),
        "use depthwise_conv_op for depthwise layers"
    );
    assert!(!spec.is_3d(), "grouped 3D convolutions are not modeled");
    assert_eq!(spec.c % groups, 0, "groups must divide input channels");
    assert_eq!(spec.k % groups, 0, "groups must divide output channels");
    let cg = spec.c / groups;
    let kg = spec.k / groups;
    let cb = round_up(cg, rwidth) / rwidth;
    let kb = round_up(kg, lanes) / lanes;
    let ih = spec.ihw + 2 * spec.pad;
    let iw = spec.ihw + 2 * spec.pad_w;
    let acc = data_dtype.accumulator();

    let mut b = OpBuilder::new(format!(
        "grouped_conv2d_g{}c{}hw{}k{}r{}s{}",
        groups, spec.c, spec.ihw, spec.k, spec.r, spec.stride
    ));
    let data = b.tensor("data", &[groups, cb, ih, iw, rwidth], data_dtype);
    let weight = b.tensor(
        "weight",
        &[groups, kb, cb, spec.r, spec.rw, lanes, rwidth],
        weight_dtype,
    );
    let g = b.axis("g", groups);
    let ko = b.axis("ko", kb);
    let x = b.axis("x", spec.oh());
    let y = b.axis("y", spec.ow());
    let ki = b.axis("ki", lanes);
    let co = b.reduce_axis("co", cb);
    let r = b.reduce_axis("r", spec.r);
    let s = b.reduce_axis("s", spec.rw);
    let ci = b.reduce_axis("ci", rwidth);
    let elem = b
        .load(
            data,
            vec![
                g.into(),
                co.into(),
                (x * spec.stride + r),
                (y * spec.stride + s),
                ci.into(),
            ],
        )
        .cast(acc)
        * b.load(
            weight,
            vec![
                g.into(),
                ko.into(),
                co.into(),
                r.into(),
                s.into(),
                ki.into(),
                ci.into(),
            ],
        )
        .cast(acc);
    b.compute(
        "out",
        acc,
        vec![g.into(), ko.into(), x.into(), y.into(), ki.into()],
        InitExpr::Identity,
        elem,
    )
}

/// A quantized blocked (batched) GEMM in the CPU dot-product convention:
/// `out[b, i, no, ni] += acc(data[b, i, co, ci]) * acc(weight[b, no, co, ni, ci])`.
/// Same `[lanes]`-output / `[rwidth]`-reduction blocking as
/// [`blocked_dense`], with the row (`m`) and batch dimensions as extra
/// outer data-parallel loops — the reduction nest the Inspector matches is
/// unchanged, which is the operator-agnosticism claim in practice.
#[allow(clippy::too_many_arguments)] // shape quad + blocking quad, like the conv builders
#[must_use]
pub fn blocked_gemm(
    m: i64,
    n: i64,
    k: i64,
    batch: i64,
    lanes: i64,
    rwidth: i64,
    data_dtype: DType,
    weight_dtype: DType,
) -> ComputeOp {
    let cb = round_up(k, rwidth) / rwidth;
    let nb = round_up(n, lanes) / lanes;
    let acc = data_dtype.accumulator();
    let mut b = OpBuilder::new(format!("gemm_b{batch}m{m}n{n}k{k}"));
    let data = b.tensor("data", &[batch, m, cb, rwidth], data_dtype);
    let weight = b.tensor("weight", &[batch, nb, cb, lanes, rwidth], weight_dtype);
    let bb = b.axis("b", batch);
    let i = b.axis("i", m);
    let no = b.axis("no", nb);
    let ni = b.axis("ni", lanes);
    let co = b.reduce_axis("co", cb);
    let ci = b.reduce_axis("ci", rwidth);
    let elem = b
        .load(data, vec![bb.into(), i.into(), co.into(), ci.into()])
        .cast(acc)
        * b.load(
            weight,
            vec![bb.into(), no.into(), co.into(), ni.into(), ci.into()],
        )
        .cast(acc);
    b.compute(
        "out",
        acc,
        vec![bb.into(), i.into(), no.into(), ni.into()],
        InitExpr::Identity,
        elem,
    )
}

#[allow(clippy::too_many_arguments)] // shape quad + tile/dtype quad, like the conv builders
fn batched_gemm_gpu_named(
    name: String,
    batch: i64,
    m: i64,
    n: i64,
    k: i64,
    tile: i64,
    red_tile: i64,
    data_dtype: DType,
    weight_dtype: DType,
) -> ComputeOp {
    let rows = round_up(m, tile);
    let cols = round_up(n, tile);
    let red = round_up(k, red_tile);
    let acc = data_dtype.accumulator();
    let mut b = OpBuilder::new(name);
    let a = b.tensor("a", &[batch, rows, red], data_dtype);
    let w = b.tensor("w", &[batch, red, cols], weight_dtype);
    let bb = b.axis("b", batch);
    let i = b.axis("i", rows);
    let j = b.axis("j", cols);
    let kk = b.reduce_axis("k", red);
    let elem = b.load(a, vec![bb.into(), i.into(), kk.into()]).cast(acc)
        * b.load(w, vec![bb.into(), kk.into(), j.into()]).cast(acc);
    b.compute(
        "out",
        acc,
        vec![bb.into(), i.into(), j.into()],
        InitExpr::Identity,
        elem,
    )
}

/// A (batched) GEMM padded to a matrix-unit target's tile — the GPU-style
/// lowering of [`OpSpec::Gemm`]. The batch dimension is an extra outer
/// data-parallel axis over the same tile nest.
#[allow(clippy::too_many_arguments)] // shape quad + tile/dtype quad, like the conv builders
#[must_use]
pub fn gemm_gpu(
    m: i64,
    n: i64,
    k: i64,
    batch: i64,
    tile: i64,
    red_tile: i64,
    data_dtype: DType,
    weight_dtype: DType,
) -> ComputeOp {
    batched_gemm_gpu_named(
        format!("gemm_{data_dtype}_b{batch}m{m}n{n}k{k}"),
        batch,
        m,
        n,
        k,
        tile,
        red_tile,
        data_dtype,
        weight_dtype,
    )
}

/// An fp16 (batched) GEMM with dimensions padded to the `16x16x16` Tensor
/// Core tile (the built-in GPU lowering of [`OpSpec::Gemm`]).
#[must_use]
pub fn gemm_f16(m: i64, n: i64, k: i64, batch: i64) -> ComputeOp {
    gemm_gpu(m, n, k, batch, 16, 16, DType::F16, DType::F16)
}

/// A grouped convolution as batched implicit GEMM (the matrix-unit path):
/// one GEMM instance per group, rows the `OH*OW` image positions, columns
/// the per-group output channels, reduction over `(C/groups)*R*S`.
#[must_use]
#[allow(clippy::too_many_arguments)] // spec + groups + tile/dtype quad
pub fn grouped_conv_gemm(
    spec: &ConvSpec,
    groups: i64,
    tile: i64,
    red_tile: i64,
    data_dtype: DType,
    weight_dtype: DType,
) -> ComputeOp {
    assert_eq!(spec.c % groups, 0, "groups must divide input channels");
    assert_eq!(spec.k % groups, 0, "groups must divide output channels");
    batched_gemm_gpu_named(
        format!(
            "grouped_conv_gemm_g{}c{}hw{}k{}r{}",
            groups, spec.c, spec.ihw, spec.k, spec.r
        ),
        groups,
        spec.oh() * spec.ow(),
        spec.k / groups,
        (spec.c / groups) * spec.r * spec.rw,
        tile,
        red_tile,
        data_dtype,
        weight_dtype,
    )
}

/// A grouped convolution as batched implicit GEMM in the fp16 WMMA
/// convention (the built-in Tensor Core path).
#[must_use]
pub fn grouped_conv_gemm_f16(spec: &ConvSpec, groups: i64) -> ComputeOp {
    grouped_conv_gemm(spec, groups, 16, 16, DType::F16, DType::F16)
}

/// A dense (fully connected) layer in a target's convention: one row-tile
/// GEMM for matrix-unit (GPU-style) targets, the `[lanes]/[rwidth]`
/// blocked form for CPU-style targets. Blocking and dtypes come from the
/// target descriptor.
#[must_use]
pub fn dense_for_target(in_features: i64, units: i64, target: &TargetDesc) -> ComputeOp {
    let (lanes, rwidth, ddt, wdt) = target.blocking();
    if target.is_gpu() {
        let acc = ddt.accumulator();
        let n = round_up(units, lanes);
        let k = round_up(in_features, rwidth);
        let mut b = OpBuilder::new(format!("dense_gemm_{in_features}x{units}"));
        let a = b.tensor("a", &[lanes, k], ddt);
        let wt = b.tensor("b", &[k, n], wdt);
        let i = b.axis("i", lanes);
        let j = b.axis("j", n);
        let kk = b.reduce_axis("k", k);
        let elem = b.load(a, vec![i.into(), kk.into()]).cast(acc)
            * b.load(wt, vec![kk.into(), j.into()]).cast(acc);
        b.compute(
            "out",
            acc,
            vec![i.into(), j.into()],
            InitExpr::Identity,
            elem,
        )
    } else {
        blocked_dense(in_features, units, lanes, rwidth, ddt, wdt)
    }
}

/// Lower an [`OpSpec`] to the target's blocked `ComputeOp`, plus the
/// convolution-structure hint the GPU tuner wants where one exists. All
/// blocking factors and operand dtypes come from the [`TargetDesc`], so a
/// target registered at runtime lowers through this with no code changes.
///
/// This is the operator dispatch the whole pipeline shares: the
/// `UnitProvider` compiles exactly what this returns, and the differential
/// matrix replays the same lowering against the reference interpreter.
/// Depthwise workloads return the scalar [`depthwise_conv_op`] — the
/// Inspector rejects them (no channel reduction), sending providers to the
/// SIMD/CUDA fallback.
#[must_use]
pub fn op_for_target(spec: &OpSpec, target: &TargetDesc) -> (ComputeOp, Option<ConvGpuHint>) {
    let (lanes, rwidth, ddt, wdt) = target.blocking();
    let gpu = target.is_gpu();
    match spec {
        OpSpec::Conv(c) if gpu => (
            conv_gemm(c, lanes, rwidth, ddt, wdt),
            Some(ConvGpuHint {
                oh: c.oh(),
                ow: c.ow(),
                channels: c.c,
            }),
        ),
        OpSpec::Conv(c) if c.is_3d() => (blocked_conv3d(c, lanes, rwidth, ddt, wdt), None),
        OpSpec::Conv(c) => (blocked_conv2d(c, lanes, rwidth, ddt, wdt), None),
        OpSpec::GroupedConv { conv, .. } if spec.is_depthwise() => {
            (depthwise_conv_op(conv, ddt), None)
        }
        OpSpec::GroupedConv { conv, groups } if gpu => (
            grouped_conv_gemm(conv, *groups, lanes, rwidth, ddt, wdt),
            None,
        ),
        OpSpec::GroupedConv { conv, groups } => (
            blocked_grouped_conv2d(conv, *groups, lanes, rwidth, ddt, wdt),
            None,
        ),
        OpSpec::Gemm { m, n, k, batch } if gpu => {
            (gemm_gpu(*m, *n, *k, *batch, lanes, rwidth, ddt, wdt), None)
        }
        OpSpec::Gemm { m, n, k, batch } => (
            blocked_gemm(*m, *n, *k, *batch, lanes, rwidth, ddt, wdt),
            None,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_core::pipeline::{Target, Tensorizer};

    #[test]
    fn round_up_behaves() {
        assert_eq!(round_up(30, 16), 32);
        assert_eq!(round_up(32, 16), 32);
        assert_eq!(round_up(1, 4), 4);
    }

    #[test]
    fn blocked_conv_tensorizes_with_vnni() {
        let spec = ConvSpec::new_2d(128, 14, 128, 3, 1, 1);
        let op = blocked_conv2d(&spec, 16, 4, DType::U8, DType::I8);
        let t = Tensorizer::new(Target::x86_avx512_vnni());
        let (intrin, m) = t.inspect(&op).unwrap();
        assert_eq!(intrin.name, "llvm.x86.avx512.vpdpbusd.512");
        // ki -> lanes, ci -> reduction groups.
        let names: Vec<String> = m
            .mapping
            .iter()
            .map(|(a, _)| op.axis(*a).unwrap().name.clone())
            .collect();
        assert_eq!(names, vec!["ki", "ci"]);
    }

    #[test]
    fn blocked_conv3d_tensorizes_without_changes() {
        let spec = ConvSpec::new_3d(64, 14, 8, 64, 3, 1, 1);
        let op = blocked_conv3d(&spec, 16, 4, DType::U8, DType::I8);
        let t = Tensorizer::new(Target::x86_avx512_vnni());
        assert!(t.inspect(&op).is_ok());
    }

    #[test]
    fn depthwise_is_rejected_by_the_inspector() {
        let spec = ConvSpec::grouped_2d(64, 14, 64, 3, 1, 1, 64);
        let op = depthwise_conv_op(&spec, DType::U8);
        let t = Tensorizer::new(Target::x86_avx512_vnni());
        assert!(t.inspect(&op).is_err());
    }

    #[test]
    fn blocked_gemm_tensorizes_with_vnni() {
        let op = blocked_gemm(64, 128, 128, 1, 16, 4, DType::U8, DType::I8);
        let t = Tensorizer::new(Target::x86_avx512_vnni());
        let (intrin, m) = t.inspect(&op).unwrap();
        assert_eq!(intrin.name, "llvm.x86.avx512.vpdpbusd.512");
        // Same mapping shape as the blocked conv: ni -> lanes, ci -> groups.
        let names: Vec<String> = m
            .mapping
            .iter()
            .map(|(a, _)| op.axis(*a).unwrap().name.clone())
            .collect();
        assert_eq!(names, vec!["ni", "ci"]);
    }

    #[test]
    fn batched_gemm_tensorizes_on_every_platform() {
        // The batch axis is just one more outer data-parallel loop; no
        // Inspector special case exists for it (the operator-agnosticism
        // claim).
        let cpu = blocked_gemm(8, 16, 32, 4, 16, 4, DType::U8, DType::I8);
        assert!(Tensorizer::new(Target::x86_avx512_vnni())
            .inspect(&cpu)
            .is_ok());
        let arm = blocked_gemm(8, 16, 32, 4, 4, 4, DType::I8, DType::I8);
        assert!(Tensorizer::new(Target::arm_neon_dot())
            .inspect(&arm)
            .is_ok());
        let gpu = gemm_f16(48, 32, 64, 4);
        let (intrin, _) = Tensorizer::new(Target::nvidia_tensor_core())
            .inspect(&gpu)
            .unwrap();
        assert!(intrin.name.contains("m16n16k16"));
    }

    #[test]
    fn grouped_conv_tensorizes_per_group() {
        let spec = OpSpec::grouped(32, 8, 32, 3, 1, 1, 4);
        let conv = *spec.conv().unwrap();
        let op = blocked_grouped_conv2d(&conv, 4, 16, 4, DType::U8, DType::I8);
        let t = Tensorizer::new(Target::x86_avx512_vnni());
        assert!(t.inspect(&op).is_ok(), "grouped conv keeps the dot nest");
    }

    #[test]
    fn depth_multiplier_conv_lowers_grouped_and_matches_reference() {
        use unit_interp::{alloc_buffers, random_fill, run, run_reference};
        // groups == c with k == 2c: not depthwise, so it must take the
        // grouped blocked path (one padded input channel per group) and
        // compute all 2c output channels exactly.
        let spec = OpSpec::grouped(4, 5, 8, 3, 1, 1, 4);
        assert!(!spec.is_depthwise());
        let (op, hint) = op_for_target(&spec, &Target::x86_avx512_vnni().desc);
        assert!(op.name.starts_with("grouped_conv2d"), "got {}", op.name);
        assert!(hint.is_none());
        let k = Tensorizer::new(Target::x86_avx512_vnni())
            .compile(&op)
            .expect("depth-multiplier conv tensorizes via padding");
        let mut bufs = alloc_buffers(&k.func);
        random_fill(&mut bufs, 123);
        let mut reference = bufs.clone();
        run(&k.func, &mut bufs).unwrap();
        run_reference(&op, &mut reference).unwrap();
        assert_eq!(bufs[op.output.0 as usize], reference[op.output.0 as usize]);
    }

    #[test]
    fn op_for_target_dispatches_every_variant_on_every_registered_target() {
        let variants = [
            OpSpec::conv2d(8, 6, 16, 3, 1, 1),
            OpSpec::conv3d(4, 4, 3, 8, 3, 1, 1),
            OpSpec::grouped(8, 6, 8, 3, 1, 1, 2),
            OpSpec::depthwise(8, 6, 3, 1, 1),
            OpSpec::gemm(8, 16, 32),
            OpSpec::batched_gemm(2, 8, 16, 32),
        ];
        // Data-driven: every target in the registry (the four built-ins
        // here), not a hard-coded list.
        for target in unit_isa::registry::targets() {
            for spec in &variants {
                let (op, hint) = op_for_target(spec, &target);
                assert!(op.mac_count() > 0, "{} on {}", op.name, target.id);
                // Only the dense-conv GPU path needs the structure hint.
                assert_eq!(
                    hint.is_some(),
                    target.is_gpu() && matches!(spec, OpSpec::Conv(_)),
                    "{} on {}",
                    op.name,
                    target.id
                );
            }
        }
    }

    #[test]
    fn blocked_gemm_correctness_via_full_pipeline() {
        use unit_interp::{alloc_buffers, random_fill, run, run_reference};
        let op = blocked_gemm(4, 8, 12, 2, 16, 4, DType::U8, DType::I8);
        let k = Tensorizer::new(Target::x86_avx512_vnni())
            .compile(&op)
            .unwrap();
        let mut bufs = alloc_buffers(&k.func);
        random_fill(&mut bufs, 9);
        let mut reference = bufs.clone();
        run(&k.func, &mut bufs).unwrap();
        run_reference(&op, &mut reference).unwrap();
        assert_eq!(bufs[op.output.0 as usize], reference[op.output.0 as usize]);
    }

    #[test]
    fn gemm_view_tensorizes_with_wmma() {
        let spec = ConvSpec::new_2d(256, 14, 256, 3, 1, 1);
        let op = conv_gemm_f16(&spec);
        let t = Tensorizer::new(Target::nvidia_tensor_core());
        let (intrin, _) = t.inspect(&op).unwrap();
        assert!(intrin.name.contains("m16n16k16"));
    }

    #[test]
    fn blocked_dense_tensorizes() {
        let op = blocked_dense(2048, 1000, 16, 4, DType::U8, DType::I8);
        let t = Tensorizer::new(Target::x86_avx512_vnni());
        assert!(t.inspect(&op).is_ok());
        assert_eq!(op.output_decl().shape, vec![63, 16]); // 1008 padded units
    }

    #[test]
    fn blocked_conv_correctness_via_full_pipeline() {
        use unit_interp::{alloc_buffers, random_fill, run, run_reference};
        let spec = ConvSpec::new_2d(8, 6, 16, 3, 1, 1);
        let op = blocked_conv2d(&spec, 16, 4, DType::U8, DType::I8);
        let k = Tensorizer::new(Target::x86_avx512_vnni())
            .compile(&op)
            .unwrap();
        let mut bufs = alloc_buffers(&k.func);
        random_fill(&mut bufs, 2024);
        let mut reference = bufs.clone();
        run(&k.func, &mut bufs).unwrap();
        run_reference(&op, &mut reference).unwrap();
        assert_eq!(bufs[op.output.0 as usize], reference[op.output.0 as usize]);
    }
}
