//! Graph-level passes: quantization and operator fusion.

use unit_dsl::DType;

use crate::ir::{Graph, GraphBuilder, NodeId, OpKind, TensorShape};

/// Quantization: wrap the graph in a `Quantize` entry after each input and
/// a `Dequantize` exit before the output, marking the interior as the int8
/// domain. (Scales and zero points do not affect latency, so they are not
/// modeled; correctness of the int8 kernels themselves is validated at the
/// tensor level.)
#[must_use]
pub fn quantize(graph: &Graph) -> Graph {
    let mut b = GraphBuilder::new(graph.name.clone());
    let mut remap: Vec<NodeId> = Vec::with_capacity(graph.nodes.len());
    for node in &graph.nodes {
        let inputs: Vec<NodeId> = node.inputs.iter().map(|i| remap[i.0 as usize]).collect();
        let new_id = match &node.op {
            OpKind::Input(shape) => {
                let mut qshape = shape.clone();
                qshape.dtype = DType::F32;
                let inp = b.add(OpKind::Input(qshape), &[], node.name.clone());
                b.add(OpKind::Quantize, &[inp], format!("{}_q", node.name))
            }
            OpKind::Softmax => {
                let dq = b.add(
                    OpKind::Dequantize,
                    &[inputs[0]],
                    format!("{}_dq", node.name),
                );
                b.add(node.op.clone(), &[dq], node.name.clone())
            }
            other => b.add(other.clone(), &inputs, node.name.clone()),
        };
        remap.push(new_id);
    }
    b.finish(remap[graph.output.0 as usize])
}

/// Operator fusion: `BiasAdd`, `Relu` and residual `Add` nodes whose first
/// input is a convolution/GEMM/dense (or an already-fused chain rooted at
/// one) are folded into the producer kernel — they execute inside the
/// epilogue of the tensorized kernel and cost nothing extra.
///
/// Fusing is only legal when the producer has no *other* consumers: the
/// epilogue rewrites the producer's output in place, so a second consumer
/// would observe post-epilogue values instead of the raw kernel output.
#[must_use]
pub fn fuse_elementwise(graph: &Graph) -> Graph {
    let mut out = graph.clone();
    // Consumer counts over every edge: a multi-consumer producer must
    // stay materialized, so nothing may fuse into it.
    let mut consumers = vec![0usize; out.nodes.len()];
    for node in &out.nodes {
        for input in &node.inputs {
            consumers[input.0 as usize] += 1;
        }
    }
    // Which nodes root a fusible chain.
    let mut fusible_root = vec![false; out.nodes.len()];
    for i in 0..out.nodes.len() {
        let node = &out.nodes[i];
        match &node.op {
            OpKind::Conv(_) | OpKind::Gemm { .. } | OpKind::Dense { .. } => {
                fusible_root[i] = true;
            }
            OpKind::BiasAdd | OpKind::Relu | OpKind::Add => {
                let first = node.inputs[0].0 as usize;
                if fusible_root[first] && consumers[first] == 1 {
                    fusible_root[i] = true;
                    out.nodes[i].fused_into_producer = true;
                }
            }
            _ => {}
        }
    }
    out
}

/// Number of kernels actually launched after fusion (non-fused,
/// non-input nodes).
#[must_use]
pub fn kernel_count(graph: &Graph) -> usize {
    graph
        .nodes
        .iter()
        .filter(|n| !n.fused_into_producer && !matches!(n.op, OpKind::Input(_)))
        .count()
}

/// Build a `TensorShape` for the quantized domain of a given shape.
#[must_use]
pub fn quantized_shape(shape: &TensorShape) -> TensorShape {
    TensorShape {
        dims: shape.dims.clone(),
        dtype: DType::U8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ConvSpec;

    fn tiny() -> Graph {
        let mut b = GraphBuilder::new("tiny");
        let input = b.add(
            OpKind::Input(TensorShape::chw(8, 16, 16, DType::F32)),
            &[],
            "data",
        );
        let c1 = b.conv_bn_relu(ConvSpec::new_2d(8, 16, 16, 3, 1, 1), input, "c1");
        let c2 = b.conv_bn_relu(ConvSpec::new_2d(16, 16, 16, 3, 1, 1), c1, "c2");
        let add = b.add(OpKind::Add, &[c2, c1], "residual");
        let s = b.add(OpKind::Softmax, &[add], "sm");
        b.finish(s)
    }

    #[test]
    fn quantize_brackets_the_graph() {
        let q = quantize(&tiny());
        let kinds: Vec<bool> = q
            .nodes
            .iter()
            .map(|n| matches!(n.op, OpKind::Quantize))
            .collect();
        assert_eq!(kinds.iter().filter(|k| **k).count(), 1);
        assert!(q.nodes.iter().any(|n| matches!(n.op, OpKind::Dequantize)));
        // Same conv workloads survive.
        assert_eq!(q.conv_workloads().len(), 2);
    }

    #[test]
    fn fusion_marks_elementwise_chains() {
        let f = fuse_elementwise(&tiny());
        // 2x (bias+relu) fused + residual add fused = 5 fused nodes.
        let fused = f.nodes.iter().filter(|n| n.fused_into_producer).count();
        assert_eq!(fused, 5);
        // Kernels: 2 convs + softmax.
        assert_eq!(kernel_count(&f), 3);
    }

    #[test]
    fn fusion_requires_a_single_consumer() {
        // Regression: a conv output feeding BOTH a ReLU and a residual Add
        // used to fuse the ReLU into the conv, so the Add read
        // post-epilogue values. Neither consumer may fuse here.
        let mut b = GraphBuilder::new("branch");
        let input = b.add(
            OpKind::Input(TensorShape::chw(8, 16, 16, DType::F32)),
            &[],
            "data",
        );
        let conv = b.add(
            OpKind::Conv(ConvSpec::new_2d(8, 16, 16, 3, 1, 1)),
            &[input],
            "conv",
        );
        let relu = b.add(OpKind::Relu, &[conv], "relu");
        let add = b.add(OpKind::Add, &[relu, conv], "residual");
        let g = b.finish(add);
        let f = fuse_elementwise(&g);
        assert!(
            !f.nodes[relu.0 as usize].fused_into_producer,
            "conv has two consumers; fusing the relu would corrupt the add's input"
        );
        // The add's first input (the relu) is not a fused chain root, so
        // the add stays a standalone kernel too.
        assert!(!f.nodes[add.0 as usize].fused_into_producer);
        assert_eq!(kernel_count(&f), 3);
    }

    #[test]
    fn fusion_does_not_touch_pool_chains() {
        let mut b = GraphBuilder::new("pools");
        let input = b.add(
            OpKind::Input(TensorShape::chw(8, 16, 16, DType::U8)),
            &[],
            "data",
        );
        let p = b.add(OpKind::MaxPool { k: 2, s: 2, pad: 0 }, &[input], "pool");
        let r = b.add(OpKind::Relu, &[p], "relu");
        let g = b.finish(r);
        let f = fuse_elementwise(&g);
        assert!(!f.nodes[r.0 as usize].fused_into_producer);
    }
}
