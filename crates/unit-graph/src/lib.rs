//! Graph-level IR substrate for UNIT.
//!
//! The paper compiles MXNet models through TVM's Relay: the graph level is
//! where quantization, layout transformation (`NCHW[x]c` data,
//! blocked-kernel weights), channel padding and operator fusion happen —
//! all prerequisites for tensorization ("our tensorized analysis relies on
//! tensor padding so that loops can be tiled by the number of lanes of the
//! instruction perfectly", Section II-C).
//!
//! * [`ir`] — a Relay-like operator DAG with type inference.
//! * [`workload`] — the operator-generic [`workload::OpSpec`] model
//!   (dense/grouped conv, batched GEMM) the compiler, cache and tests are
//!   phrased in.
//! * [`passes`] — quantization, channel padding, conv+bias+relu fusion.
//! * [`layout`] — blocked-layout convolution/GEMM/dense `ComputeOp`
//!   builders (the bridge from graph level to the tensor DSL), including
//!   the descriptor-driven [`layout::op_for_target`] dispatch (blocking
//!   and dtypes come from the `unit_isa::TargetDesc`, so runtime-registered
//!   targets lower with no code changes).
//! * [`models`] — the nine CNNs of the evaluation (resnet-18/50/50-v1b/
//!   101/152, inception-bn/v3, mobilenet-v1/v2), the conv3d variant of
//!   resnet-18 used by Figure 13, and a GEMM-built transformer encoder.
//! * [`compile`] — the graph compiler: per-layer UNIT invocation with a
//!   kernel cache, memory-bound cost for elementwise/pooling ops, and
//!   end-to-end latency aggregation.
//! * [`cache`] — the sharded concurrent kernel cache backing the
//!   compiler.
//!
//! # Sharded kernel cache
//!
//! Compiled-kernel results are cached per *(workload, full tuning
//! config)* in an N-way sharded map ([`cache::ShardedCache`]): keys hash
//! to a shard, each shard is an independently locked `HashMap`, and racy
//! fills resolve first-insert-wins so every thread observes one canonical
//! value per key. Sharding is what lets [`compile::compile_model_parallel`]
//! fan independent layers out across threads without serializing on a
//! single global lock; keying by the target platform and the **full**
//! [`unit_core::pipeline::TuningConfig`] (not a lossy mode byte) is what
//! lets providers with different platforms or search budgets share one
//! cache — see [`compile::KernelCacheKey`].

pub mod cache;
pub mod compile;
pub mod ir;
pub mod layout;
pub mod models;
pub mod passes;
pub mod plan;
pub mod workload;

pub use cache::ShardedCache;
pub use compile::{
    compile_graph, compile_model_parallel, compile_model_with_artifacts, compile_models_parallel,
    unique_workloads, CacheWorkload, CompiledOp, E2eReport, KernelCache, KernelCacheKey,
    LayerLatency,
};
pub use ir::{Graph, GraphBuilder, Node, NodeId, OpKind, TensorShape};
pub use plan::{build_plan, ModelPlan, PlanSource, PlanStep};
pub use workload::{ConvSpec, OpSpec};
