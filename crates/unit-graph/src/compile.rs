//! The graph compiler: per-layer kernel compilation and end-to-end latency
//! aggregation.
//!
//! [`ConvProvider`] abstracts "who executes the convolutions": UNIT itself
//! ([`UnitProvider`]), or the simulated vendor libraries in
//! `unit-baselines`. Elementwise and pooling operators are memory-bound and
//! costed by data volume; fused operators cost nothing; every launched
//! kernel pays the provider's per-op framework overhead (this is where the
//! MXNet-vs-TVM gap of Figure 8 lives).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use unit_core::pipeline::{Target, Tensorizer, TuningConfig};
use unit_core::tuner::{CpuTuneMode, GpuTuneMode};
use unit_dsl::DType;
use unit_isa::Platform;
use unit_sim::estimate_cpu;
use unit_tir::{lower::lower, LoopKind, Schedule};

use crate::ir::{Graph, OpKind};
use crate::layout::{
    blocked_conv2d, blocked_conv3d, blocked_dense, conv_gemm_f16, depthwise_conv_op,
};
use crate::passes::fuse_elementwise;
use crate::workload::ConvSpec;

/// Executes convolutions and dense layers; costs everything else by volume.
pub trait ConvProvider {
    /// Name shown in reports.
    fn name(&self) -> &str;

    /// Latency of one convolution in microseconds, plus a note.
    fn conv_micros(&self, spec: &ConvSpec) -> (f64, String);

    /// Latency of a dense layer in microseconds.
    fn dense_micros(&self, in_features: i64, units: i64) -> f64;

    /// Latency of a memory-bound operator moving `bytes` bytes.
    fn memory_op_micros(&self, bytes: f64) -> f64;

    /// Fixed per-launched-kernel framework overhead in microseconds.
    fn per_op_overhead_us(&self) -> f64;

    /// Whether the provider fuses `conv+bias+relu(+add)` chains.
    fn fuses_elementwise(&self) -> bool {
        true
    }
}

/// One layer's contribution to the end-to-end latency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerLatency {
    /// Node name.
    pub name: String,
    /// Latency in microseconds (framework overhead included).
    pub micros: f64,
    /// Provider note (chosen schedule, fallback reason, ...).
    pub note: String,
}

/// An end-to-end inference latency report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E2eReport {
    /// Model name.
    pub model: String,
    /// Provider name.
    pub provider: String,
    /// Per-layer latencies (launched kernels only).
    pub layers: Vec<LayerLatency>,
    /// Total latency in milliseconds.
    pub total_ms: f64,
}

impl E2eReport {
    /// Total latency in microseconds.
    #[must_use]
    pub fn total_us(&self) -> f64 {
        self.total_ms * 1e3
    }
}

/// Compute the end-to-end latency of a graph under a provider.
#[must_use]
pub fn e2e_latency(graph: &Graph, provider: &dyn ConvProvider) -> E2eReport {
    let graph = if provider.fuses_elementwise() {
        fuse_elementwise(graph)
    } else {
        graph.clone()
    };
    let shapes = graph.infer_shapes();
    let mut layers = Vec::new();
    let mut total_us = 0.0;
    for node in &graph.nodes {
        if node.fused_into_producer || matches!(node.op, OpKind::Input(_)) {
            continue;
        }
        let (us, note) = match &node.op {
            OpKind::Conv(spec) => {
                let (us, note) = provider.conv_micros(spec);
                (us, note)
            }
            OpKind::Dense { units } => {
                let in_features = shapes[node.inputs[0].0 as usize].elems();
                (provider.dense_micros(in_features, *units), String::new())
            }
            _ => {
                let in_bytes: i64 = node
                    .inputs
                    .iter()
                    .map(|i| shapes[i.0 as usize].bytes())
                    .sum();
                let out_bytes = shapes[node.id.0 as usize].bytes();
                (
                    provider.memory_op_micros((in_bytes + out_bytes) as f64),
                    String::new(),
                )
            }
        };
        let us = us + provider.per_op_overhead_us();
        total_us += us;
        layers.push(LayerLatency {
            name: node.name.clone(),
            micros: us,
            note,
        });
    }
    E2eReport {
        model: graph.name.clone(),
        provider: provider.name().to_string(),
        layers,
        total_ms: total_us / 1e3,
    }
}

/// Convenience: run a graph through the UNIT provider for a target.
#[must_use]
pub fn compile_graph(graph: &Graph, target: Target, tuning: TuningConfig) -> E2eReport {
    let provider = UnitProvider::new(target, tuning);
    e2e_latency(graph, &provider)
}

/// Lower an op with the conventional SIMD schedule compilers produce when
/// no tensorized instruction applies: parallel outer loop, the innermost
/// data-parallel loop vectorized *below* the reduction (keeping the
/// accumulator vector live across it), and the next loop unrolled to hide
/// the FMA latency. Shared by every CPU provider's fallback path.
#[must_use]
pub fn simd_fallback_func(op: &unit_dsl::ComputeOp) -> unit_tir::TirFunc {
    let mut s = Schedule::new(op);
    let dp: Vec<_> = s
        .leaves()
        .into_iter()
        .filter(|v| s.var(*v).class == unit_tir::IterClass::DataParallel)
        .collect();
    let reduce: Vec<_> = s
        .leaves()
        .into_iter()
        .filter(|v| s.var(*v).class == unit_tir::IterClass::Reduce)
        .collect();
    if let Some(first) = dp.first() {
        let _ = s.annotate(*first, LoopKind::Parallel);
    }
    if dp.len() > 2 {
        // Order: [parallel + serial dp..] [reduce..] [unrolled dp] [vector dp].
        let vec_leaf = dp[dp.len() - 1];
        let unroll_leaf = dp[dp.len() - 2];
        let mut order: Vec<unit_tir::VarId> = dp[..dp.len() - 2].to_vec();
        order.extend(reduce.iter().copied());
        order.push(unroll_leaf);
        order.push(vec_leaf);
        let _ = s.reorder(&order);
        let _ = s.annotate(unroll_leaf, LoopKind::Unrolled);
        let _ = s.annotate(vec_leaf, LoopKind::Vectorized);
    } else if dp.len() > 1 {
        let vec_leaf = dp[dp.len() - 1];
        let mut order: Vec<unit_tir::VarId> = dp[..dp.len() - 1].to_vec();
        order.extend(reduce.iter().copied());
        order.push(vec_leaf);
        let _ = s.reorder(&order);
        let _ = s.annotate(vec_leaf, LoopKind::Vectorized);
    }
    lower(&s, &op.name).expect("fallback lowering cannot fail")
}

/// The UNIT execution provider: every dense convolution goes through the
/// Inspector/Rewriter/Tuner pipeline; depthwise layers (rejected by the
/// Inspector) fall back to a parallel SIMD schedule.
pub struct UnitProvider {
    target: Target,
    tuning: TuningConfig,
    label: String,
    cache: Mutex<HashMap<(ConvSpec, u8), (f64, String)>>,
}

impl UnitProvider {
    /// A provider with the given tuning effort.
    #[must_use]
    pub fn new(target: Target, tuning: TuningConfig) -> UnitProvider {
        UnitProvider {
            target,
            tuning,
            label: "UNIT".to_string(),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Override the display label (used by ablation stages).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> UnitProvider {
        self.label = label.into();
        self
    }

    /// Quantization convention of the target platform:
    /// (lanes, reduction width, data dtype, weight dtype).
    #[must_use]
    pub fn conv_blocking(&self) -> (i64, i64, DType, DType) {
        match self.target.platform {
            Platform::X86Vnni => (16, 4, DType::U8, DType::I8),
            Platform::ArmDot => (4, 4, DType::I8, DType::I8),
            Platform::NvidiaTensorCore => (16, 16, DType::F16, DType::F16),
        }
    }

    fn clock_ghz(&self) -> f64 {
        match (&self.target.cpu, &self.target.gpu) {
            (Some(c), _) => c.freq_ghz,
            (_, Some(g)) => g.freq_ghz,
            _ => 1.0,
        }
    }

    fn dram_gbps(&self) -> f64 {
        match (&self.target.cpu, &self.target.gpu) {
            (Some(c), _) => c.dram_gbps,
            (_, Some(g)) => g.dram_gbps,
            _ => 10.0,
        }
    }

    /// SIMD fallback for operations the Inspector rejects (depthwise).
    fn fallback_micros(&self, op: &unit_dsl::ComputeOp) -> (f64, String) {
        match &self.target.cpu {
            Some(machine) => {
                let func = simd_fallback_func(op);
                let est = estimate_cpu(&func, machine);
                (
                    est.micros(machine.freq_ghz),
                    "SIMD fallback (no applicable instruction)".into(),
                )
            }
            None => {
                // GPU fallback: CUDA-core fp16 path, memory bound.
                let gpu = self.target.gpu.as_ref().expect("target has a machine");
                let macs = op.mac_count() as f64;
                let flops_cycles = macs / (f64::from(gpu.fp32_lanes_per_sm) * f64::from(gpu.sms));
                let bytes: f64 = op
                    .tensors
                    .iter()
                    .map(|t| (t.len() * t.dtype.bytes()) as f64)
                    .sum();
                let mem_cycles = bytes / gpu.bytes_per_cycle();
                let cycles =
                    flops_cycles.max(mem_cycles) + gpu.kernel_launch_us * gpu.freq_ghz * 1e3;
                (cycles / (gpu.freq_ghz * 1e3), "CUDA-core fallback".into())
            }
        }
    }
}

impl ConvProvider for UnitProvider {
    fn name(&self) -> &str {
        &self.label
    }

    fn conv_micros(&self, spec: &ConvSpec) -> (f64, String) {
        let mode_key = match (self.tuning.cpu, self.tuning.gpu) {
            (CpuTuneMode::ParallelOnly, _) => 0u8,
            (CpuTuneMode::ParallelUnroll, GpuTuneMode::Generic) => 1,
            (_, GpuTuneMode::FuseDim) => 2,
            (_, GpuTuneMode::SplitK) => 3,
            _ => 4,
        };
        if let Some(hit) = self.cache.lock().unwrap().get(&(*spec, mode_key)) {
            return hit.clone();
        }
        let (lanes, rwidth, ddt, wdt) = self.conv_blocking();
        let result = if spec.is_depthwise() {
            let op = depthwise_conv_op(spec, ddt);
            self.fallback_micros(&op)
        } else {
            let (op, hint) = match self.target.platform {
                Platform::NvidiaTensorCore => (
                    conv_gemm_f16(spec),
                    Some(unit_core::tuner::ConvGpuHint {
                        oh: spec.oh(),
                        ow: spec.ow(),
                        channels: spec.c,
                    }),
                ),
                _ if spec.is_3d() => (blocked_conv3d(spec, lanes, rwidth, ddt, wdt), None),
                _ => (blocked_conv2d(spec, lanes, rwidth, ddt, wdt), None),
            };
            match Tensorizer::new(self.target.clone())
                .with_tuning(self.tuning)
                .compile_with_hint(&op, hint)
            {
                Ok(kernel) => {
                    let us = kernel.estimate.micros(self.clock_ghz());
                    (us, format!("{} [{}]", kernel.intrinsic.name, kernel.chosen))
                }
                Err(_) => self.fallback_micros(&op),
            }
        };
        self.cache
            .lock()
            .unwrap()
            .insert((*spec, mode_key), result.clone());
        result
    }

    fn dense_micros(&self, in_features: i64, units: i64) -> f64 {
        match self.target.platform {
            Platform::NvidiaTensorCore => {
                let op = unit_dsl::builder::matmul_f16(
                    16,
                    crate::layout::round_up(units, 16),
                    crate::layout::round_up(in_features, 16),
                );
                match Tensorizer::new(self.target.clone())
                    .with_tuning(self.tuning)
                    .compile(&op)
                {
                    Ok(k) => k.estimate.micros(self.clock_ghz()),
                    Err(_) => 10.0,
                }
            }
            _ => {
                let (lanes, rwidth, ddt, wdt) = self.conv_blocking();
                let op = blocked_dense(in_features, units, lanes, rwidth, ddt, wdt);
                match Tensorizer::new(self.target.clone())
                    .with_tuning(self.tuning)
                    .compile(&op)
                {
                    Ok(k) => k.estimate.micros(self.clock_ghz()),
                    Err(_) => self.fallback_micros(&op).0,
                }
            }
        }
    }

    fn memory_op_micros(&self, bytes: f64) -> f64 {
        bytes / (self.dram_gbps() * 1e3)
    }

    fn per_op_overhead_us(&self) -> f64 {
        // TVM-style compiled graph runtime: a few microseconds per kernel.
        if self.target.gpu.is_some() {
            1.0 // launch latency is inside the kernel estimate
        } else {
            3.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{resnet, ResnetDepth};

    #[test]
    fn resnet18_compiles_end_to_end_on_x86() {
        let g = resnet(ResnetDepth::R18);
        let report = compile_graph(
            &g,
            Target::x86_avx512_vnni(),
            TuningConfig {
                cpu: CpuTuneMode::Tuned { max_pairs: 4 },
                gpu: GpuTuneMode::Tuned,
            },
        );
        assert!(
            report.total_ms > 0.1,
            "implausibly fast: {} ms",
            report.total_ms
        );
        assert!(
            report.total_ms < 50.0,
            "implausibly slow: {} ms",
            report.total_ms
        );
        // All 20 convs plus the dense layer appear.
        assert!(report.layers.len() > 20);
        // The hot layers are tensorized with VNNI.
        let tensorized = report
            .layers
            .iter()
            .filter(|l| l.note.contains("vpdpbusd"))
            .count();
        assert!(tensorized >= 20, "only {tensorized} layers tensorized");
    }

    #[test]
    fn kernel_cache_hits_repeated_shapes() {
        let g = resnet(ResnetDepth::R18);
        let provider = UnitProvider::new(
            Target::x86_avx512_vnni(),
            TuningConfig {
                cpu: CpuTuneMode::ParallelUnroll,
                gpu: GpuTuneMode::Generic,
            },
        );
        let r = e2e_latency(&g, &provider);
        // 20 convs but only ~11 unique shapes: the cache must be smaller.
        assert!(provider.cache.lock().unwrap().len() <= 12);
        assert!(r.total_ms > 0.0);
    }

    #[test]
    fn gpu_report_uses_wmma() {
        let g = resnet(ResnetDepth::R18);
        let report = compile_graph(
            &g,
            Target::nvidia_tensor_core(),
            TuningConfig {
                cpu: CpuTuneMode::ParallelUnroll,
                gpu: GpuTuneMode::Tuned,
            },
        );
        let wmma = report
            .layers
            .iter()
            .filter(|l| l.note.contains("wmma"))
            .count();
        assert!(wmma >= 20);
    }
}
