//! The graph compiler: per-layer kernel compilation and end-to-end latency
//! aggregation.
//!
//! [`ConvProvider`] abstracts "who executes the tensor workloads"
//! (convolutions, grouped convolutions and GEMMs, modeled uniformly as
//! [`OpSpec`]): UNIT itself ([`UnitProvider`]), or the simulated vendor
//! libraries in `unit-baselines`. Elementwise and pooling operators are
//! memory-bound and costed by data volume; fused operators cost nothing;
//! every launched kernel pays the provider's per-op framework overhead
//! (this is where the MXNet-vs-TVM gap of Figure 8 lives).
//!
//! Compilation itself can be parallel: [`compile_model_parallel`] and
//! [`compile_models_parallel`] deduplicate workloads and fan the unique
//! set out across worker threads into the provider's sharded kernel cache
//! (see [`crate::cache`]), producing reports bit-identical to the serial
//! path.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use unit_core::pipeline::{StageTimings, Target, Tensorizer, TuningConfig};
use unit_core::tuner::{parallel_map, CpuTuneMode, GpuTuneMode};
use unit_dsl::DType;
use unit_sim::estimate_cpu;
use unit_tir::{lower::lower, EpiGeom, LoopKind, Schedule, TirFunc};

use crate::cache::ShardedCache;
use crate::ir::{Graph, OpKind};
use crate::layout::{dense_for_target, op_for_target};
use crate::passes::fuse_elementwise;
use crate::workload::{ConvSpec, OpSpec};

/// Anything the kernel cache (and the serving runtime's artifact store)
/// can key a compiled result by: an operator-generic [`OpSpec`] workload,
/// or a dense (fully connected) layer, which lowers through
/// [`dense_for_target`] rather than [`op_for_target`] and therefore needs
/// its own identity. Covering dense here is what makes a warm start from
/// a persisted artifact store *completely* search-free — before this, the
/// dense classifier of every CNN re-tuned on each compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CacheWorkload {
    /// A tensor workload (conv, grouped conv, GEMM).
    Op(OpSpec),
    /// A dense layer `in_features -> units`.
    Dense {
        /// Flattened input features.
        in_features: i64,
        /// Output units.
        units: i64,
    },
    /// A tensor workload with a fused epilogue chain lowered into its
    /// tape (bias / relu / residual add / softmax / layernorm /
    /// requantize). A distinct variant, so a fused kernel can never
    /// collide with the bare core it wraps.
    Fused {
        /// The tensorized core.
        op: OpSpec,
        /// The epilogue chain fused after it.
        epi: unit_tir::EpilogueSpec,
    },
}

impl CacheWorkload {
    /// Stable text encoding for the artifact-store file format: defers to
    /// [`OpSpec::encode`] for tensor workloads, `dense:<in>:<units>` for
    /// dense layers, `fused:<epilogue>:<op>` for epilogue-fused kernels
    /// (the epilogue encoding is dot-separated, keeping the whole field
    /// colon-parseable). Change only with the store's format version.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            CacheWorkload::Op(spec) => spec.encode(),
            CacheWorkload::Dense { in_features, units } => format!("dense:{in_features}:{units}"),
            CacheWorkload::Fused { op, epi } => {
                format!("fused:{}:{}", epi.encode(), op.encode())
            }
        }
    }

    /// Parse the [`CacheWorkload::encode`] encoding.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed field.
    pub fn decode(s: &str) -> Result<CacheWorkload, String> {
        if let Some(rest) = s.strip_prefix("fused:") {
            let (epi, op) = rest
                .split_once(':')
                .ok_or_else(|| format!("workload `{s}`: fused needs epilogue:op"))?;
            let epi =
                unit_tir::EpilogueSpec::decode(epi).map_err(|e| format!("workload `{s}`: {e}"))?;
            let op = OpSpec::decode(op)?;
            return Ok(CacheWorkload::Fused { op, epi });
        }
        match s.strip_prefix("dense:") {
            Some(rest) => {
                let (a, b) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("workload `{s}`: dense needs in_features:units"))?;
                let in_features = a
                    .parse::<i64>()
                    .map_err(|e| format!("workload `{s}`: bad in_features: {e}"))?;
                let units = b
                    .parse::<i64>()
                    .map_err(|e| format!("workload `{s}`: bad units: {e}"))?;
                if in_features < 1 || units < 1 {
                    return Err(format!("workload `{s}`: dense dims must be positive"));
                }
                Ok(CacheWorkload::Dense { in_features, units })
            }
            None => OpSpec::decode(s).map(CacheWorkload::Op),
        }
    }
}

impl From<OpSpec> for CacheWorkload {
    fn from(spec: OpSpec) -> CacheWorkload {
        CacheWorkload::Op(spec)
    }
}

impl From<ConvSpec> for CacheWorkload {
    fn from(spec: ConvSpec) -> CacheWorkload {
        CacheWorkload::Op(OpSpec::from_conv(spec))
    }
}

/// The kernel-cache key: the workload, the target *id*, and the **full**
/// tuning configuration.
///
/// An earlier revision collapsed the config to a hand-rolled `u8`
/// "mode key" that mapped every `CpuTuneMode::Tuned { max_pairs }` (and
/// every `Fixed { .. }` pair) to the same value, so providers sharing a
/// cache with different search budgets poisoned each other's entries.
/// Deriving the key from the target id and the whole config makes those
/// collisions impossible — including for targets registered at runtime,
/// and for targets that happen to share a blocking convention;
/// `kernel_cache_keys_distinguish_search_budgets` and
/// `kernel_cache_keys_distinguish_targets` below are the regression
/// tests. (Two providers for the *same* target id but hand-customized
/// machine models would still collide — don't share a cache across
/// machine models.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KernelCacheKey {
    /// The workload (conv, grouped conv, GEMM or dense — the variant is
    /// part of the key, so a GEMM can never collide with a conv of the
    /// same MAC count, nor a dense layer with its equivalent GEMM).
    pub spec: CacheWorkload,
    /// Descriptor id of the target the kernel was compiled for.
    pub target: String,
    /// CPU tuning mode, including its search budget / fixed pair.
    pub cpu: CpuTuneMode,
    /// GPU tuning mode.
    pub gpu: GpuTuneMode,
}

impl KernelCacheKey {
    /// The key for a workload on a target under a tuning configuration.
    /// Accepts a bare `ConvSpec` / `OpSpec` too (normalized via
    /// [`OpSpec::from_conv`] / [`CacheWorkload::Op`]).
    #[must_use]
    pub fn new(
        spec: impl Into<CacheWorkload>,
        target: impl Into<String>,
        tuning: TuningConfig,
    ) -> KernelCacheKey {
        KernelCacheKey {
            spec: spec.into(),
            target: target.into(),
            cpu: tuning.cpu,
            gpu: tuning.gpu,
        }
    }
}

/// The shared kernel cache type: `(workload, target id, full config) ->
/// (latency, note)`.
pub type KernelCache = ShardedCache<KernelCacheKey, (f64, String)>;

/// Executes tensor workloads (convolutions, grouped convolutions, GEMMs)
/// and dense layers; costs everything else by volume.
///
/// The name is historical — the trait predates the operator-generic
/// [`OpSpec`] model. Vendor baselines only implement the conv and dense
/// hooks; the GEMM hook has a default that reuses their convolution cost
/// model, while [`UnitProvider`] compiles GEMMs through the real pipeline.
pub trait ConvProvider {
    /// Name shown in reports.
    fn name(&self) -> &str;

    /// Latency of one convolution in microseconds, plus a note.
    fn conv_micros(&self, spec: &ConvSpec) -> (f64, String);

    /// Latency of one (batched) GEMM in microseconds, plus a note.
    ///
    /// Default: model the GEMM as its equivalent 1x1 convolution (`m`
    /// spatial positions, `k` input / `n` output channels) through the
    /// provider's own convolution cost model, scaled to the exact MAC
    /// count and batch — vendor libraries dispatch both through the same
    /// inner-product kernels, so this keeps the baselines meaningful
    /// without per-library GEMM tables.
    fn gemm_micros(&self, m: i64, n: i64, k: i64, batch: i64) -> (f64, String) {
        let ihw = ((m as f64).sqrt().ceil() as i64).max(1);
        let spec = ConvSpec::new_2d(k, ihw, n, 1, 1, 0);
        let (us, note) = self.conv_micros(&spec);
        let scale = (batch * m) as f64 / (ihw * ihw) as f64;
        (us * scale, note)
    }

    /// Latency of any [`OpSpec`] workload: dispatches conv-family specs to
    /// [`ConvProvider::conv_micros`] and GEMMs to
    /// [`ConvProvider::gemm_micros`].
    fn op_micros(&self, spec: &OpSpec) -> (f64, String) {
        match spec {
            OpSpec::Conv(c) | OpSpec::GroupedConv { conv: c, .. } => self.conv_micros(c),
            OpSpec::Gemm { m, n, k, batch } => self.gemm_micros(*m, *n, *k, *batch),
        }
    }

    /// Latency of a dense layer in microseconds.
    fn dense_micros(&self, in_features: i64, units: i64) -> f64;

    /// Latency of a memory-bound operator moving `bytes` bytes.
    fn memory_op_micros(&self, bytes: f64) -> f64;

    /// Fixed per-launched-kernel framework overhead in microseconds.
    fn per_op_overhead_us(&self) -> f64;

    /// Whether the provider fuses `conv+bias+relu(+add)` chains.
    fn fuses_elementwise(&self) -> bool {
        true
    }
}

/// One layer's contribution to the end-to-end latency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerLatency {
    /// Node name.
    pub name: String,
    /// Latency in microseconds (framework overhead included).
    pub micros: f64,
    /// Provider note (chosen schedule, fallback reason, ...).
    pub note: String,
}

/// An end-to-end inference latency report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E2eReport {
    /// Model name.
    pub model: String,
    /// Provider name.
    pub provider: String,
    /// Per-layer latencies (launched kernels only).
    pub layers: Vec<LayerLatency>,
    /// Total latency in milliseconds.
    pub total_ms: f64,
}

impl E2eReport {
    /// Total latency in microseconds.
    #[must_use]
    pub fn total_us(&self) -> f64 {
        self.total_ms * 1e3
    }
}

/// Compute the end-to-end latency of a graph under a provider.
#[must_use]
pub fn e2e_latency(graph: &Graph, provider: &dyn ConvProvider) -> E2eReport {
    let graph = if provider.fuses_elementwise() {
        fuse_elementwise(graph)
    } else {
        graph.clone()
    };
    let shapes = graph.infer_shapes();
    let mut layers = Vec::new();
    let mut total_us = 0.0;
    for node in &graph.nodes {
        if node.fused_into_producer || matches!(node.op, OpKind::Input(_)) {
            continue;
        }
        let (us, note) = match &node.op {
            OpKind::Conv(spec) => {
                let (us, note) = provider.conv_micros(spec);
                (us, note)
            }
            OpKind::Gemm { m, n, k, batch } => provider.op_micros(&OpSpec::Gemm {
                m: *m,
                n: *n,
                k: *k,
                batch: *batch,
            }),
            OpKind::Dense { units } => {
                let in_features = shapes[node.inputs[0].0 as usize].elems();
                (provider.dense_micros(in_features, *units), String::new())
            }
            _ => {
                let in_bytes: i64 = node
                    .inputs
                    .iter()
                    .map(|i| shapes[i.0 as usize].bytes())
                    .sum();
                let out_bytes = shapes[node.id.0 as usize].bytes();
                (
                    provider.memory_op_micros((in_bytes + out_bytes) as f64),
                    String::new(),
                )
            }
        };
        let us = us + provider.per_op_overhead_us();
        total_us += us;
        layers.push(LayerLatency {
            name: node.name.clone(),
            micros: us,
            note,
        });
    }
    E2eReport {
        model: graph.name.clone(),
        provider: provider.name().to_string(),
        layers,
        total_ms: total_us / 1e3,
    }
}

/// Convenience: run a graph through the UNIT provider for a target.
#[must_use]
pub fn compile_graph(graph: &Graph, target: Target, tuning: TuningConfig) -> E2eReport {
    let provider = UnitProvider::new(target, tuning);
    e2e_latency(graph, &provider)
}

/// Deduplicated tensor workloads (convolutions *and* GEMMs) of a set of
/// graphs, in first-seen topological order (models repeat shapes heavily:
/// resnet-18 has 20 convs but only ~11 unique workloads, and a transformer
/// block reuses one projection GEMM shape four times, so deduplicating
/// before the fan-out is what keeps the parallel work list short).
#[must_use]
pub fn unique_workloads(graphs: &[&Graph]) -> Vec<OpSpec> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for g in graphs {
        for spec in g.op_workloads() {
            if seen.insert(spec) {
                out.push(spec);
            }
        }
    }
    out
}

/// Deduplicated convolution workloads only (the historical entry point;
/// the ablation figures are phrased in `ConvSpec`).
#[must_use]
pub fn unique_conv_workloads(graphs: &[&Graph]) -> Vec<ConvSpec> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for g in graphs {
        for spec in g.conv_workloads() {
            if seen.insert(spec) {
                out.push(spec);
            }
        }
    }
    out
}

/// Compile a model with its independent convolution layers fanned out
/// across `workers` threads (`0` = one per core).
///
/// Repeated workloads are deduplicated first, the unique set is compiled
/// concurrently into the provider's sharded cache, and the final latency
/// aggregation then runs serially against a fully warm cache. Because
/// per-kernel tuning is deterministic, the report is identical to
/// [`compile_graph`] at any worker count (the differential suite asserts
/// this).
#[must_use]
pub fn compile_model_parallel(
    graph: &Graph,
    target: Target,
    tuning: TuningConfig,
    workers: usize,
) -> E2eReport {
    let provider = UnitProvider::new(target, tuning);
    warm_kernel_cache(&provider, &[graph], workers);
    e2e_latency(graph, &provider)
}

/// Batch compilation: one shared provider (and sharded kernel cache)
/// across every model, with the union of unique workloads fanned out
/// across `workers` threads. Workloads shared *between* models (1x1
/// projections, stem convs, ...) are compiled once for the whole batch.
#[must_use]
pub fn compile_models_parallel(
    graphs: &[&Graph],
    target: Target,
    tuning: TuningConfig,
    workers: usize,
) -> Vec<E2eReport> {
    let provider = UnitProvider::new(target, tuning);
    warm_kernel_cache(&provider, graphs, workers);
    graphs.iter().map(|g| e2e_latency(g, &provider)).collect()
}

/// Compile a model against an externally owned (possibly pre-warmed)
/// kernel cache: the serving runtime's artifact import/export hook.
///
/// When `cache` was restored from a persisted artifact store
/// (`ShardedCache::restore`), every workload — convolutions, GEMMs *and*
/// the dense classifier — hits the cache and the tuner is never invoked;
/// the report is bit-identical to the cold [`compile_graph`] run that
/// produced the artifacts. Workloads missing from the cache (partial or
/// stale stores) are compiled normally, fanned out across `workers`
/// threads, and left in `cache` for the caller to re-export.
#[must_use]
pub fn compile_model_with_artifacts(
    graph: &Graph,
    target: Target,
    tuning: TuningConfig,
    cache: &Arc<KernelCache>,
    workers: usize,
) -> E2eReport {
    let provider = UnitProvider::new(target, tuning).with_shared_cache(Arc::clone(cache));
    warm_kernel_cache(&provider, &[graph], workers);
    e2e_latency(graph, &provider)
}

/// Fan the unique tensor workloads of `graphs` out across `workers`
/// threads, filling the provider's kernel cache.
fn warm_kernel_cache(provider: &UnitProvider, graphs: &[&Graph], workers: usize) {
    let specs = unique_workloads(graphs);
    let _ = parallel_map(&specs, workers, |_, spec| provider.op_micros(spec));
}

/// Lower an op with the conventional SIMD schedule compilers produce when
/// no tensorized instruction applies: parallel outer loop, the innermost
/// data-parallel loop vectorized *below* the reduction (keeping the
/// accumulator vector live across it), and the next loop unrolled to hide
/// the FMA latency. Shared by every CPU provider's fallback path.
#[must_use]
pub fn simd_fallback_func(op: &unit_dsl::ComputeOp) -> unit_tir::TirFunc {
    let mut s = Schedule::new(op);
    let dp: Vec<_> = s
        .leaves()
        .into_iter()
        .filter(|v| s.var(*v).class == unit_tir::IterClass::DataParallel)
        .collect();
    let reduce: Vec<_> = s
        .leaves()
        .into_iter()
        .filter(|v| s.var(*v).class == unit_tir::IterClass::Reduce)
        .collect();
    if let Some(first) = dp.first() {
        let _ = s.annotate(*first, LoopKind::Parallel);
    }
    if dp.len() > 2 {
        // Order: [parallel + serial dp..] [reduce..] [unrolled dp] [vector dp].
        let vec_leaf = dp[dp.len() - 1];
        let unroll_leaf = dp[dp.len() - 2];
        let mut order: Vec<unit_tir::VarId> = dp[..dp.len() - 2].to_vec();
        order.extend(reduce.iter().copied());
        order.push(unroll_leaf);
        order.push(vec_leaf);
        let _ = s.reorder(&order);
        let _ = s.annotate(unroll_leaf, LoopKind::Unrolled);
        let _ = s.annotate(vec_leaf, LoopKind::Vectorized);
    } else if dp.len() > 1 {
        let vec_leaf = dp[dp.len() - 1];
        let mut order: Vec<unit_tir::VarId> = dp[..dp.len() - 1].to_vec();
        order.extend(reduce.iter().copied());
        order.push(vec_leaf);
        let _ = s.reorder(&order);
        let _ = s.annotate(vec_leaf, LoopKind::Vectorized);
    }
    lower(&s, &op.name).expect("fallback lowering cannot fail")
}

/// The UNIT execution provider: every dense convolution goes through the
/// Inspector/Rewriter/Tuner pipeline; depthwise layers (rejected by the
/// Inspector) fall back to a parallel SIMD schedule.
pub struct UnitProvider {
    target: Target,
    tuning: TuningConfig,
    label: String,
    workers: usize,
    cache: Arc<KernelCache>,
}

impl UnitProvider {
    /// A provider with the given tuning effort.
    #[must_use]
    pub fn new(target: Target, tuning: TuningConfig) -> UnitProvider {
        UnitProvider {
            target,
            tuning,
            label: "UNIT".to_string(),
            workers: 1,
            cache: Arc::new(KernelCache::default()),
        }
    }

    /// Override the display label (used by ablation stages).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> UnitProvider {
        self.label = label.into();
        self
    }

    /// Evaluate tuning candidates with up to `n` threads per kernel
    /// (`0` = one per core). Deterministic — see
    /// [`Tensorizer::with_workers`].
    #[must_use]
    pub fn with_workers(mut self, n: usize) -> UnitProvider {
        self.workers = n;
        self
    }

    /// Share a kernel cache with other providers (batch compilation).
    /// Keys carry the full tuning config, so providers with different
    /// budgets coexist without poisoning each other.
    #[must_use]
    pub fn with_shared_cache(mut self, cache: Arc<KernelCache>) -> UnitProvider {
        self.cache = cache;
        self
    }

    /// The provider's kernel cache (shareable via
    /// [`UnitProvider::with_shared_cache`]).
    #[must_use]
    pub fn cache(&self) -> &Arc<KernelCache> {
        &self.cache
    }

    /// Quantization convention of the target:
    /// (lanes, reduction width, data dtype, weight dtype) — straight from
    /// the target descriptor.
    #[must_use]
    pub fn conv_blocking(&self) -> (i64, i64, DType, DType) {
        self.target.desc.blocking()
    }

    fn clock_ghz(&self) -> f64 {
        match (&self.target.cpu, &self.target.gpu) {
            (Some(c), _) => c.freq_ghz,
            (_, Some(g)) => g.freq_ghz,
            _ => 1.0,
        }
    }

    fn dram_gbps(&self) -> f64 {
        match (&self.target.cpu, &self.target.gpu) {
            (Some(c), _) => c.dram_gbps,
            (_, Some(g)) => g.dram_gbps,
            _ => 10.0,
        }
    }

    /// SIMD-fallback cost for operations the Inspector rejects
    /// (depthwise). The caller supplies the already-lowered fallback
    /// function — [`UnitProvider::compile_workload_full`] needs it for
    /// execution anyway, so it is lowered exactly once. `func` is only
    /// consulted for CPU targets (the GPU cost model works from the op
    /// directly).
    fn fallback_micros_with(
        &self,
        op: &unit_dsl::ComputeOp,
        func: Option<&TirFunc>,
    ) -> (f64, String) {
        match &self.target.cpu {
            Some(machine) => {
                let func = func.expect("CPU fallback estimation needs the lowered function");
                let est = estimate_cpu(func, machine);
                (
                    est.micros(machine.freq_ghz),
                    "SIMD fallback (no applicable instruction)".into(),
                )
            }
            None => {
                // GPU fallback: CUDA-core fp16 path, memory bound.
                let gpu = self.target.gpu.as_ref().expect("target has a machine");
                let macs = op.mac_count() as f64;
                let flops_cycles = macs / (f64::from(gpu.fp32_lanes_per_sm) * f64::from(gpu.sms));
                let bytes: f64 = op
                    .tensors
                    .iter()
                    .map(|t| (t.len() * t.dtype.bytes()) as f64)
                    .sum();
                let mem_cycles = bytes / gpu.bytes_per_cycle();
                let cycles =
                    flops_cycles.max(mem_cycles) + gpu.kernel_launch_us * gpu.freq_ghz * 1e3;
                (cycles / (gpu.freq_ghz * 1e3), "CUDA-core fallback".into())
            }
        }
    }

    /// Compile one workload through the full pipeline, bypassing the
    /// cache (the cache fill path). The lowering dispatch lives in
    /// [`op_for_target`] and is shared with the differential test
    /// matrix; depthwise workloads (rejected by the Inspector) go straight
    /// to the fallback.
    fn compile_op_uncached(&self, spec: &OpSpec) -> (f64, String) {
        let compiled = self.compile_workload_full(&CacheWorkload::Op(*spec));
        (compiled.micros, compiled.note)
    }

    /// Compile a workload through the full pipeline into an *executable*
    /// kernel, bypassing every cache: the serving runtime's compile hook.
    ///
    /// Unlike the latency-only provider paths, the returned [`CompiledOp`]
    /// keeps the lowered [`TirFunc`] (tensorized when an instruction
    /// applies, the shared SIMD fallback schedule otherwise — both
    /// interpretable by `unit-interp` and bit-identical to the reference
    /// executor) plus the *search-free replay config* that rebuilds the
    /// identical kernel, which is what the artifact store persists.
    #[must_use]
    pub fn compile_workload_full(&self, workload: &CacheWorkload) -> CompiledOp {
        let search_free = TuningConfig {
            cpu: CpuTuneMode::ParallelUnroll,
            gpu: GpuTuneMode::Generic,
        };
        match workload {
            CacheWorkload::Op(spec) => {
                let (op, hint) = op_for_target(spec, &self.target.desc);
                let compiled = if spec.is_depthwise() {
                    None
                } else {
                    Tensorizer::new(self.target.clone())
                        .with_tuning(self.tuning)
                        .with_workers(self.workers)
                        .compile_with_hint(&op, hint)
                        .ok()
                };
                match compiled {
                    Some(kernel) => {
                        let us = kernel.estimate.micros(self.clock_ghz());
                        let note = format!("{} [{}]", kernel.intrinsic.name, kernel.chosen);
                        CompiledOp {
                            workload: *workload,
                            output: op.output.0 as usize,
                            func: kernel.func,
                            micros: us,
                            note,
                            replay: kernel.replay,
                            tensorized: true,
                            stages: kernel.stages,
                        }
                    }
                    None => {
                        let func = simd_fallback_func(&op);
                        let (us, note) = self.fallback_micros_with(&op, Some(&func));
                        CompiledOp {
                            workload: *workload,
                            output: op.output.0 as usize,
                            func,
                            micros: us,
                            note,
                            replay: search_free,
                            tensorized: false,
                            stages: StageTimings::default(),
                        }
                    }
                }
            }
            CacheWorkload::Dense { in_features, units } => {
                let op = dense_for_target(*in_features, *units, &self.target.desc);
                let output = op.output.0 as usize;
                match Tensorizer::new(self.target.clone())
                    .with_tuning(self.tuning)
                    .with_workers(self.workers)
                    .compile(&op)
                {
                    // Dense notes stay empty: `e2e_latency` has always
                    // reported dense layers without a note, and the
                    // artifact round-trip must reproduce reports exactly.
                    Ok(kernel) => CompiledOp {
                        workload: *workload,
                        output,
                        micros: kernel.estimate.micros(self.clock_ghz()),
                        func: kernel.func,
                        note: String::new(),
                        replay: kernel.replay,
                        tensorized: true,
                        stages: kernel.stages,
                    },
                    Err(_) => {
                        let func = simd_fallback_func(&op);
                        let micros = if self.target.desc.is_gpu() {
                            10.0
                        } else {
                            self.fallback_micros_with(&op, Some(&func)).0
                        };
                        CompiledOp {
                            workload: *workload,
                            output,
                            func,
                            micros,
                            note: String::new(),
                            replay: search_free,
                            tensorized: false,
                            stages: StageTimings::default(),
                        }
                    }
                }
            }
            CacheWorkload::Fused { op, epi } => {
                // Compile the tensorized core, then lower the epilogue
                // region onto its output buffer. The workload identity
                // stays `Fused`, so the cache entry never collides with
                // the bare core.
                let mut compiled = self.compile_workload_full(&CacheWorkload::Op(*op));
                compiled.workload = *workload;
                if epi.is_empty() {
                    return compiled;
                }
                let out_shape = compiled.func.buffers[compiled.output].shape.clone();
                let geom = match *op {
                    OpSpec::Gemm { batch, m, n, .. } => {
                        EpiGeom::for_output(batch, m, n, &out_shape)
                    }
                    _ => None,
                };
                match geom {
                    Some(geom) => {
                        unit_tir::attach_epilogue(&mut compiled.func, epi, geom);
                        compiled.note = format!("{} +epi[{}]", compiled.note, epi.encode());
                    }
                    None => {
                        // No geometry contract for this layout: serve the
                        // bare core rather than corrupt padding cells.
                        compiled.note =
                            format!("{} [epilogue skipped: no geometry]", compiled.note);
                    }
                }
                compiled
            }
        }
    }
}

/// An executable compiled workload: what [`UnitProvider::compile_workload_full`]
/// returns and the serving runtime (`unit-serve`) executes through
/// `unit-interp` and persists (minus the function) in its artifact store.
#[derive(Debug, Clone)]
pub struct CompiledOp {
    /// The workload identity (cache/artifact key material).
    pub workload: CacheWorkload,
    /// The executable lowered function.
    pub func: TirFunc,
    /// Buffer index of the op's output within [`CompiledOp::func`]'s
    /// buffer list (allocation order of `unit_interp::alloc_buffers`).
    pub output: usize,
    /// Modeled latency in microseconds (framework overhead excluded).
    pub micros: f64,
    /// Provider note (chosen schedule or fallback reason; empty for
    /// dense layers, matching `e2e_latency` reports).
    pub note: String,
    /// Search-free tuning config that reproduces this kernel exactly.
    pub replay: TuningConfig,
    /// Whether a tensorized instruction applied (false = SIMD fallback).
    pub tensorized: bool,
    /// Per-stage compile wall time (zero for fallback paths, whose cost
    /// is not stage-structured). Observability only — never persisted.
    pub stages: StageTimings,
}

impl ConvProvider for UnitProvider {
    fn name(&self) -> &str {
        &self.label
    }

    fn conv_micros(&self, spec: &ConvSpec) -> (f64, String) {
        self.op_micros(&OpSpec::from_conv(*spec))
    }

    fn gemm_micros(&self, m: i64, n: i64, k: i64, batch: i64) -> (f64, String) {
        // Unlike the vendor default, UNIT compiles GEMMs through the real
        // Inspector/Rewriter/Tuner pipeline.
        self.op_micros(&OpSpec::batched_gemm(batch, m, n, k))
    }

    fn op_micros(&self, spec: &OpSpec) -> (f64, String) {
        let key = KernelCacheKey::new(*spec, self.target.desc.id.clone(), self.tuning);
        self.cache
            .get_or_insert_with(key, || self.compile_op_uncached(spec))
    }

    fn dense_micros(&self, in_features: i64, units: i64) -> f64 {
        // The lowering convention (row-tile GEMM vs. blocked dense) comes
        // from the descriptor's execution style, not from which target
        // this is. Dense results are cached (and artifact-persisted)
        // under their own `CacheWorkload::Dense` key, so a warm start
        // never re-tunes the classifier layer.
        let key = KernelCacheKey::new(
            CacheWorkload::Dense { in_features, units },
            self.target.desc.id.clone(),
            self.tuning,
        );
        self.cache
            .get_or_insert_with(key, || {
                let compiled =
                    self.compile_workload_full(&CacheWorkload::Dense { in_features, units });
                (compiled.micros, compiled.note)
            })
            .0
    }

    fn memory_op_micros(&self, bytes: f64) -> f64 {
        bytes / (self.dram_gbps() * 1e3)
    }

    fn per_op_overhead_us(&self) -> f64 {
        // TVM-style compiled graph runtime: a few microseconds per kernel.
        if self.target.gpu.is_some() {
            1.0 // launch latency is inside the kernel estimate
        } else {
            3.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{resnet, ResnetDepth};

    #[test]
    fn resnet18_compiles_end_to_end_on_x86() {
        let g = resnet(ResnetDepth::R18);
        let report = compile_graph(
            &g,
            Target::x86_avx512_vnni(),
            TuningConfig {
                cpu: CpuTuneMode::Tuned { max_pairs: 4 },
                gpu: GpuTuneMode::Tuned,
            },
        );
        assert!(
            report.total_ms > 0.1,
            "implausibly fast: {} ms",
            report.total_ms
        );
        assert!(
            report.total_ms < 50.0,
            "implausibly slow: {} ms",
            report.total_ms
        );
        // All 20 convs plus the dense layer appear.
        assert!(report.layers.len() > 20);
        // The hot layers are tensorized with VNNI.
        let tensorized = report
            .layers
            .iter()
            .filter(|l| l.note.contains("vpdpbusd"))
            .count();
        assert!(tensorized >= 20, "only {tensorized} layers tensorized");
    }

    #[test]
    fn kernel_cache_hits_repeated_shapes() {
        let g = resnet(ResnetDepth::R18);
        let provider = UnitProvider::new(
            Target::x86_avx512_vnni(),
            TuningConfig {
                cpu: CpuTuneMode::ParallelUnroll,
                gpu: GpuTuneMode::Generic,
            },
        );
        let r = e2e_latency(&g, &provider);
        // 20 convs but only ~11 unique shapes, plus the fc1000 dense
        // classifier (cached under its own CacheWorkload::Dense key since
        // the serving runtime landed): the cache must be much smaller
        // than the layer count.
        assert!(provider.cache().len() <= 13);
        assert_eq!(
            provider.cache().len(),
            unique_conv_workloads(&[&g]).len() + g.dense_workloads().len(),
            "every unique workload (convs + dense) is cached exactly once"
        );
        assert_eq!(g.dense_workloads().len(), 1, "resnet has one classifier");
        assert!(r.total_ms > 0.0);
    }

    #[test]
    fn kernel_cache_keys_distinguish_search_budgets() {
        // Regression: the old u8 mode_key mapped every Tuned { max_pairs }
        // (and every Fixed pair) to one value.
        let spec = ConvSpec::new_2d(64, 14, 64, 3, 1, 1);
        let gpu = GpuTuneMode::Tuned;
        let tuned = |max_pairs| {
            KernelCacheKey::new(
                spec,
                "x86-avx512-vnni",
                TuningConfig {
                    cpu: CpuTuneMode::Tuned { max_pairs },
                    gpu,
                },
            )
        };
        assert_ne!(tuned(1), tuned(16));
        let fixed = |par, unroll| {
            KernelCacheKey::new(
                spec,
                "x86-avx512-vnni",
                TuningConfig {
                    cpu: CpuTuneMode::Fixed { par, unroll },
                    gpu,
                },
            )
        };
        assert_ne!(fixed(500, 4), fixed(3000, 4));
        assert_ne!(fixed(3000, 4), fixed(3000, 8));
    }

    #[test]
    fn kernel_cache_keys_distinguish_gemm_from_conv_with_equal_macs() {
        // Regression (extends the PR-2 collision tests): a 1x1 conv over
        // 4x4 spatial positions with 16x16 channels and a 16x16x16 GEMM
        // both count 4096 MACs. The OpSpec variant is part of the key, so
        // they can never share a cache entry.
        let conv = OpSpec::conv2d(16, 4, 16, 1, 1, 0);
        let gemm = OpSpec::gemm(16, 16, 16);
        assert_eq!(conv.macs(), gemm.macs(), "the trap requires equal MACs");
        let tuning = TuningConfig::default();
        let key = |spec| KernelCacheKey::new(spec, "x86-avx512-vnni", tuning);
        assert_ne!(key(conv), key(gemm));
        // Batch is part of the GEMM identity too: a bmm with the same
        // total MACs is a different kernel.
        assert_ne!(
            key(OpSpec::batched_gemm(4, 16, 16, 4)),
            key(OpSpec::gemm(16, 16, 16))
        );
        // And grouped convs are distinct from the dense conv of the same
        // geometry (the groups live in the key explicitly).
        assert_ne!(
            key(OpSpec::grouped(16, 4, 16, 1, 1, 0, 4)),
            key(OpSpec::conv2d(16, 4, 16, 1, 1, 0))
        );
    }

    #[test]
    fn gemm_and_conv_kernels_coexist_in_one_cache() {
        // Behaviorally: one provider compiles both families; each gets its
        // own entry and its own tensorized kernel.
        let provider = UnitProvider::new(
            Target::x86_avx512_vnni(),
            TuningConfig {
                cpu: CpuTuneMode::ParallelUnroll,
                gpu: GpuTuneMode::Generic,
            },
        );
        let conv = ConvSpec::new_2d(16, 4, 16, 1, 1, 0);
        let (_, conv_note) = provider.conv_micros(&conv);
        let (_, gemm_note) = provider.gemm_micros(16, 16, 16, 1);
        assert_eq!(provider.cache().len(), 2, "one entry per workload kind");
        assert!(conv_note.contains("vpdpbusd"), "conv note: {conv_note}");
        assert!(gemm_note.contains("vpdpbusd"), "gemm note: {gemm_note}");
    }

    #[test]
    fn transformer_block_compiles_on_all_three_platforms() {
        use crate::models::{transformer_tiny, TRANSFORMER_TINY_UNIQUE_GEMMS};
        let g = transformer_tiny();
        let tuning = TuningConfig {
            cpu: CpuTuneMode::Tuned { max_pairs: 2 },
            gpu: GpuTuneMode::Tuned,
        };
        for (target, instr) in [
            (Target::x86_avx512_vnni(), "vpdpbusd"),
            (Target::arm_neon_dot(), "dot"),
            (Target::nvidia_tensor_core(), "wmma"),
        ] {
            let provider = UnitProvider::new(target.clone(), tuning);
            let report = e2e_latency(&g, &provider);
            assert!(report.total_ms > 0.0, "{}", provider.name());
            // Every GEMM node (8 per block) tensorizes on every platform.
            let tensorized = report
                .layers
                .iter()
                .filter(|l| l.note.contains(instr))
                .count();
            assert_eq!(
                tensorized, 8,
                "{}: {} layers tensorized with {instr}",
                target.desc.id, tensorized
            );
            // The cache holds exactly the unique GEMM workloads, all of
            // them Gemm-variant keys (cache-distinct from any conv).
            assert_eq!(provider.cache().len(), TRANSFORMER_TINY_UNIQUE_GEMMS);
        }
    }

    #[test]
    fn transformer_parallel_compilation_matches_serial() {
        use crate::models::transformer_tiny;
        let g = transformer_tiny();
        let tuning = TuningConfig {
            cpu: CpuTuneMode::Tuned { max_pairs: 2 },
            gpu: GpuTuneMode::Tuned,
        };
        let serial = compile_graph(&g, Target::x86_avx512_vnni(), tuning);
        let parallel = compile_model_parallel(&g, Target::x86_avx512_vnni(), tuning, 8);
        assert_eq!(serial.total_ms, parallel.total_ms);
        for (s, p) in serial.layers.iter().zip(&parallel.layers) {
            assert_eq!(s.micros, p.micros, "layer {} diverged", s.name);
            assert_eq!(s.note, p.note);
        }
    }

    #[test]
    fn kernel_cache_keys_distinguish_targets() {
        // Regression: the key must carry the target id, or cross-target
        // providers sharing a cache would serve each other's kernels.
        let spec = ConvSpec::new_2d(64, 14, 64, 3, 1, 1);
        let tuning = TuningConfig::default();
        let key = |target: &str| KernelCacheKey::new(spec, target, tuning);
        assert_ne!(key("x86-avx512-vnni"), key("arm-neon-dot"));
        assert_ne!(key("x86-avx512-vnni"), key("nvidia-tensor-core"));

        // Behaviorally: an x86 and an ARM provider sharing one cache must
        // each serve their own platform's kernel.
        let shared: Arc<KernelCache> = Arc::new(KernelCache::default());
        let x86 = UnitProvider::new(Target::x86_avx512_vnni(), tuning)
            .with_shared_cache(Arc::clone(&shared));
        let arm = UnitProvider::new(Target::arm_neon_dot(), tuning)
            .with_shared_cache(Arc::clone(&shared));
        let (_, x86_note) = x86.conv_micros(&spec);
        let (_, arm_note) = arm.conv_micros(&spec);
        assert_eq!(shared.len(), 2, "one entry per platform");
        assert!(x86_note.contains("vpdpbusd"), "x86 note: {x86_note}");
        assert!(arm_note.contains("dot"), "ARM note: {arm_note}");
    }

    // The identical-blocking twin of this regression — which must register
    // a runtime target — lives in `tests/target_cache_isolation.rs`, in
    // its own binary so the global registry mutation cannot leak here.

    #[test]
    fn shared_cache_providers_with_different_budgets_do_not_poison_each_other() {
        let spec = ConvSpec::new_2d(128, 16, 128, 3, 1, 1);
        let shared: Arc<KernelCache> = Arc::new(KernelCache::default());
        let target = Target::x86_avx512_vnni();
        let narrow = UnitProvider::new(
            target.clone(),
            TuningConfig {
                cpu: CpuTuneMode::Tuned { max_pairs: 1 },
                gpu: GpuTuneMode::Tuned,
            },
        )
        .with_shared_cache(Arc::clone(&shared));
        let wide = UnitProvider::new(
            target.clone(),
            TuningConfig {
                cpu: CpuTuneMode::Tuned { max_pairs: 16 },
                gpu: GpuTuneMode::Tuned,
            },
        )
        .with_shared_cache(Arc::clone(&shared));

        // Fill in narrow-first order, then compare against fresh providers.
        let narrow_us = narrow.conv_micros(&spec).0;
        let wide_us = wide.conv_micros(&spec).0;
        assert_eq!(shared.len(), 2, "two distinct keys for two budgets");
        let fresh_wide = UnitProvider::new(
            target.clone(),
            TuningConfig {
                cpu: CpuTuneMode::Tuned { max_pairs: 16 },
                gpu: GpuTuneMode::Tuned,
            },
        );
        assert_eq!(
            wide_us,
            fresh_wide.conv_micros(&spec).0,
            "wide provider must not inherit the narrow provider's kernel"
        );
        // The 16-pair search can only improve on the 1-pair search.
        assert!(wide_us <= narrow_us);
    }

    #[test]
    fn parallel_model_compilation_matches_serial_report() {
        let g = resnet(ResnetDepth::R18);
        let tuning = TuningConfig {
            cpu: CpuTuneMode::Tuned { max_pairs: 4 },
            gpu: GpuTuneMode::Tuned,
        };
        let serial = compile_graph(&g, Target::x86_avx512_vnni(), tuning);
        let parallel = compile_model_parallel(&g, Target::x86_avx512_vnni(), tuning, 8);
        assert_eq!(serial.total_ms, parallel.total_ms);
        assert_eq!(serial.layers.len(), parallel.layers.len());
        for (s, p) in serial.layers.iter().zip(&parallel.layers) {
            assert_eq!(s.micros, p.micros, "layer {} diverged", s.name);
            assert_eq!(s.note, p.note);
        }
    }

    #[test]
    fn batch_compilation_shares_kernels_across_models() {
        use crate::models::{mobilenet_v1, resnet, ResnetDepth};
        let r18 = resnet(ResnetDepth::R18);
        let mv1 = mobilenet_v1();
        let tuning = TuningConfig {
            cpu: CpuTuneMode::ParallelUnroll,
            gpu: GpuTuneMode::Generic,
        };
        let reports = compile_models_parallel(&[&r18, &mv1], Target::x86_avx512_vnni(), tuning, 4);
        assert_eq!(reports.len(), 2);
        for (report, g) in reports.iter().zip([&r18, &mv1]) {
            let solo = compile_graph(g, Target::x86_avx512_vnni(), tuning);
            assert_eq!(report.total_ms, solo.total_ms, "{} diverged", g.name);
        }
    }

    #[test]
    fn gpu_report_uses_wmma() {
        let g = resnet(ResnetDepth::R18);
        let report = compile_graph(
            &g,
            Target::nvidia_tensor_core(),
            TuningConfig {
                cpu: CpuTuneMode::ParallelUnroll,
                gpu: GpuTuneMode::Tuned,
            },
        );
        let wmma = report
            .layers
            .iter()
            .filter(|l| l.note.contains("wmma"))
            .count();
        assert!(wmma >= 20);
    }
}
