//! Kernel-cache identity for runtime-registered targets.
//!
//! Runs in its own test binary because it mutates the process-global
//! target registry (registering a clone target), which must not leak into
//! the unit-graph lib tests that enumerate `registry::targets()`.

use std::sync::Arc;

use unit_core::pipeline::{Target, TuningConfig};
use unit_core::tuner::{CpuTuneMode, GpuTuneMode};
use unit_graph::compile::{ConvProvider, KernelCache, KernelCacheKey, UnitProvider};
use unit_graph::ConvSpec;
use unit_isa::registry;

/// Two targets with *identical blocking* must never collide in the
/// kernel cache: the key carries the target id, not the blocking the
/// target derives to.
#[test]
fn kernel_cache_keys_distinguish_targets_with_identical_blocking() {
    // A runtime-registered target cloning arm-neon-dot's convention
    // (4x4 blocking, i8 x i8, same machine model).
    let mut clone = registry::target_by_id("arm-neon-dot").unwrap();
    clone.id = "dsp-dot-clone".to_string();
    clone.display_name = "fictional DSP with sdot-compatible blocking".to_string();
    registry::register_target(clone.clone()).unwrap();
    let arm_desc = registry::target_by_id("arm-neon-dot").unwrap();
    assert_eq!(
        clone.blocking(),
        arm_desc.blocking(),
        "the trap requires identical blocking"
    );

    let spec = ConvSpec::new_2d(8, 6, 8, 3, 1, 1);
    let tuning = TuningConfig {
        cpu: CpuTuneMode::ParallelUnroll,
        gpu: GpuTuneMode::Generic,
    };
    assert_ne!(
        KernelCacheKey::new(spec, "arm-neon-dot", tuning),
        KernelCacheKey::new(spec, "dsp-dot-clone", tuning)
    );

    // Behaviorally: providers for the two targets sharing one cache fill
    // one entry each (the clone target registers no instructions, so it
    // lands on the SIMD fallback — under its own key).
    let shared: Arc<KernelCache> = Arc::new(KernelCache::default());
    let arm =
        UnitProvider::new(Target::arm_neon_dot(), tuning).with_shared_cache(Arc::clone(&shared));
    let dsp = UnitProvider::new(Target::by_id("dsp-dot-clone").unwrap(), tuning)
        .with_shared_cache(Arc::clone(&shared));
    let (_, arm_note) = arm.conv_micros(&spec);
    let (_, dsp_note) = dsp.conv_micros(&spec);
    assert_eq!(
        shared.len(),
        2,
        "identical blocking must not collapse entries"
    );
    assert!(arm_note.contains("dot"), "ARM note: {arm_note}");
    assert!(dsp_note.contains("fallback"), "DSP note: {dsp_note}");
}
