//! The instruction-tape compiler and executor: UNIT's serving fast path.
//!
//! The statement-tree interpreter ([`crate::exec`]) re-traverses the AST,
//! re-resolves intrinsic names against the registry, and re-enumerates
//! operand lanes with odometer arithmetic on **every** call — fine for
//! one-shot differential tests, wasteful when a serving engine replays the
//! same kernel thousands of times. [`Tape::compile`] lowers a
//! [`TirFunc`] *once* into a flat, preallocated instruction tape that a hot
//! loop can replay with none of that per-call work:
//!
//! * **Register bytecode.** The statement tree becomes a linear `Vec` of
//!   tape ops with explicit jump targets; loops are a `Loop`/`End` pair,
//!   residue guards compile to a `Guard` op holding its exit address.
//!
//! | opcode  | operands                    | effect                           |
//!   |---------|-----------------------------|----------------------------------|
//!   | `Loop`  | var                         | `env[var] = 0`                   |
//!   | `End`   | var, extent, top            | `env[var] += 1`; jump `top` while `env[var] < extent` |
//!   | `Guard` | conditions, exit            | jump `exit` unless all `index < bound` hold |
//!   | `Store` | addr program, value program | evaluate RPN value, write buffer |
//!   | `Intrin`| compiled-intrinsic id       | gather → emulate → scatter       |
//!   | `EpiEw` | fused elementwise chain     | one pass over the logical output cells applying bias / residual add / relu / requantize per cell |
//!   | `EpiRowStat` | reduction kind         | per-row max / sum / mean+sigma into the scratch row file |
//!   | `EpiRowApply`| pointwise kind         | per-cell exp / softmax-normalize / layernorm against the row file |
//!
//! * **Intrinsics resolved at compile time.** Each [`unit_tir::IntrinStmt`]
//!   site becomes a compiled-intrinsic record: the registry handle is looked up
//!   once, operand-count and accumulator requirements are validated once,
//!   and every operand's `(reg_at, mem_off)` lane pattern
//!   ([`OperandSpec::lanes`]) is precomputed into a flat slice the executor
//!   replays directly.
//! * **Static bounds checking.** Every buffer access carries an interval
//!   proof ([`IdxExpr::bounds`] over the loop extents). Accesses provably
//!   inside `[0, len)` skip per-element validation in the hot loop;
//!   only accesses the tape cannot prove (e.g. under residue guards)
//!   keep a runtime check. [`Tape::stats`] reports the split.
//! * **Reusable register file.** [`TapeScratch`] preallocates the loop
//!   environment, evaluation stacks and per-site intrinsic registers; a
//!   steady-state [`Tape::run`] performs no heap allocation.
//!
//! The tree-walk interpreter remains the differential oracle: both engines
//! share [`OperandSpec::for_each_lane`] and must produce bit-identical
//! buffers for every function (see `tests/tape_differential.rs`).
//!
//! # Example
//!
//! ```
//! use unit_dsl::builder::matmul_u8i8;
//! use unit_tir::{schedule::Schedule, lower::lower};
//! use unit_interp::{alloc_buffers, random_fill, tape::Tape};
//!
//! let op = matmul_u8i8(4, 8, 16);
//! let func = lower(&Schedule::new(&op), "mm").unwrap();
//! let tape = Tape::compile(&func).unwrap();
//! let mut scratch = tape.scratch();
//! let mut bufs = alloc_buffers(&func);
//! random_fill(&mut bufs, 42);
//! tape.run(&mut bufs, &mut scratch).unwrap(); // replayable, allocation-free
//! ```

use unit_dsl::{BinOp, DType};
use unit_isa::{registry, Scalar, TensorIntrinsic, TypedBuf};
use unit_tir::epilogue::{
    exp_q15, layernorm_cell, mean_sigma, requantize, softmax_prob, EpiGeom, EpiOp,
};
use unit_tir::{BufId, BufferDecl, Guard, IdxExpr, IntrinStmt, OperandSpec, Stmt, TExpr, TirFunc};

use crate::epilogue::{cell_to_i64, i64_to_cell};
use crate::exec::ExecError;

/// One step of a compiled non-affine index program (RPN over `env`).
#[derive(Debug, Clone, Copy)]
enum IdxOp {
    /// Push a loop variable's current value.
    PushVar(u32),
    /// Push a constant.
    PushConst(i64),
    /// Pop two, push their sum.
    Add,
    /// Multiply the top of stack by a constant.
    MulC(i64),
    /// Euclidean-divide the top of stack by a positive constant.
    DivC(i64),
    /// Euclidean-remainder the top of stack by a positive constant.
    ModC(i64),
}

/// A compiled index expression. Affine expressions (the overwhelmingly
/// common case) evaluate as a dot product over precomputed
/// `(var, coefficient)` terms; division/modulo expressions introduced by
/// loop fusion fall back to a small RPN program.
#[derive(Debug, Clone)]
enum IdxProg {
    Affine {
        terms: Box<[(u32, i64)]>,
        offset: i64,
    },
    Rpn(Box<[IdxOp]>),
}

impl IdxProg {
    fn compile(e: &IdxExpr) -> IdxProg {
        if let Some((coeffs, offset)) = e.as_affine() {
            IdxProg::Affine {
                terms: coeffs.into_iter().map(|(v, c)| (v.0, c)).collect(),
                offset,
            }
        } else {
            let mut ops = Vec::new();
            Self::rpn(e, &mut ops);
            IdxProg::Rpn(ops.into())
        }
    }

    fn rpn(e: &IdxExpr, out: &mut Vec<IdxOp>) {
        match e {
            IdxExpr::Var(v) => out.push(IdxOp::PushVar(v.0)),
            IdxExpr::Const(c) => out.push(IdxOp::PushConst(*c)),
            IdxExpr::Add(a, b) => {
                Self::rpn(a, out);
                Self::rpn(b, out);
                out.push(IdxOp::Add);
            }
            IdxExpr::Mul(a, k) => {
                Self::rpn(a, out);
                out.push(IdxOp::MulC(*k));
            }
            IdxExpr::FloorDiv(a, k) => {
                Self::rpn(a, out);
                out.push(IdxOp::DivC(*k));
            }
            IdxExpr::Mod(a, k) => {
                Self::rpn(a, out);
                out.push(IdxOp::ModC(*k));
            }
        }
    }

    fn eval(&self, env: &[i64], stack: &mut Vec<i64>) -> i64 {
        match self {
            IdxProg::Affine { terms, offset } => {
                let mut v = *offset;
                for &(slot, coeff) in terms.iter() {
                    v += env[slot as usize] * coeff;
                }
                v
            }
            IdxProg::Rpn(ops) => {
                stack.clear();
                for op in ops.iter() {
                    match *op {
                        IdxOp::PushVar(s) => stack.push(env[s as usize]),
                        IdxOp::PushConst(c) => stack.push(c),
                        IdxOp::Add => {
                            let b = stack.pop().expect("rpn add rhs");
                            let a = stack.last_mut().expect("rpn add lhs");
                            *a += b;
                        }
                        IdxOp::MulC(k) => {
                            let a = stack.last_mut().expect("rpn mul");
                            *a *= k;
                        }
                        IdxOp::DivC(k) => {
                            let a = stack.last_mut().expect("rpn div");
                            *a = a.div_euclid(k);
                        }
                        IdxOp::ModC(k) => {
                            let a = stack.last_mut().expect("rpn mod");
                            *a = a.rem_euclid(k);
                        }
                    }
                }
                stack.pop().expect("rpn result")
            }
        }
    }
}

/// A compiled flat buffer address: the index program plus the bounds
/// verdict. `checked == false` means the compiler proved the address lies
/// in `[0, len)` for every loop iteration, so the hot loop skips the test.
#[derive(Debug, Clone)]
struct Addr {
    buffer: u32,
    prog: IdxProg,
    len: usize,
    checked: bool,
}

impl Addr {
    #[inline]
    fn eval(&self, env: &[i64], stack: &mut Vec<i64>) -> Result<usize, ExecError> {
        let at = self.prog.eval(env, stack);
        if self.checked && (at < 0 || at as usize >= self.len) {
            return Err(ExecError::OutOfBounds {
                buffer: self.buffer,
                index: at,
                len: self.len,
            });
        }
        debug_assert!(at >= 0 && (at as usize) < self.len, "static proof violated");
        Ok(at as usize)
    }
}

/// One step of a compiled store-value program (RPN over [`Scalar`]s, with
/// all dtypes resolved at compile time).
#[derive(Debug, Clone)]
enum SOp {
    /// Push a pre-wrapped constant.
    Const(Scalar),
    /// Push a buffer element.
    Load(Addr),
    /// Convert the top of stack between dtypes.
    Cast { from: DType, to: DType },
    /// Pop two, push the binary result at a fixed dtype.
    Bin { op: BinOp, dtype: DType },
}

/// A compiled residue-guard condition (`index < bound`). Statically true
/// conditions are elided at compile time; statically false conditions
/// delete the guarded body outright.
#[derive(Debug, Clone)]
struct CompiledGuard {
    prog: IdxProg,
    bound: i64,
}

/// A gather/scatter plan for one intrinsic operand: the base-address
/// program plus the precomputed lane pattern.
#[derive(Debug, Clone)]
struct OperandPlan {
    buffer: u32,
    base: IdxProg,
    /// `(register element, memory offset)` per lane, precomputed once from
    /// [`OperandSpec::lanes`].
    lanes: Box<[(u32, i64)]>,
    len: usize,
    /// Whether `base + mem_off` needs a runtime bounds test.
    checked: bool,
}

/// A tensorized-instruction site with the registry handle resolved and all
/// operand plans precomputed.
struct CompiledIntrin {
    intrin: TensorIntrinsic,
    /// Shape prototypes for the per-site register file (one per semantics
    /// tensor), used to build [`TapeScratch`].
    reg_templates: Vec<TypedBuf>,
    /// Data-operand gathers: `(register index, plan)`.
    loads: Vec<(u32, OperandPlan)>,
    /// Accumulator seed gather: either the distinct accumulator operand or
    /// the destination (in-place accumulation).
    acc: (u32, OperandPlan),
    /// Output scatter plan.
    dst: OperandPlan,
    /// Register holding the output after emulation.
    out_reg: u32,
}

/// One step of a fused elementwise epilogue chain (all math over exact
/// `i64` cell values — see [`crate::epilogue`]).
#[derive(Debug, Clone, Copy)]
enum EwStep {
    /// `x += bias[j]`, `bias` being buffer `buf`.
    Bias { buf: u32 },
    /// `x += residual[b, i, j]`, `residual` being buffer `buf`.
    Add { buf: u32 },
    /// `x = max(0, x)`.
    Relu,
    /// `x = requantize(x)`.
    Quant,
}

/// Per-row reduction kind for `EpiRowStat`.
#[derive(Debug, Clone, Copy)]
enum RowStatKind {
    /// Row maximum into `row_a` (softmax pass 1).
    Max,
    /// Row sum into `row_a` (softmax pass 3).
    Sum,
    /// Row mean into `row_a` and `isqrt(var)+1` into `row_b` (layernorm).
    MeanSigma,
}

/// Per-cell transform kind for `EpiRowApply`.
#[derive(Debug, Clone, Copy)]
enum RowApplyKind {
    /// `x = exp_q15(row_a - x)` (softmax pass 2).
    Exp,
    /// `x = softmax_prob(x, row_a)` (softmax pass 4).
    Prob,
    /// `x = layernorm_cell(x, row_a, row_b)`.
    Norm,
}

/// One tape instruction. See the module docs for the opcode table.
enum TapeOp {
    Loop {
        var: u32,
    },
    End {
        var: u32,
        extent: i64,
        top: u32,
    },
    Guard {
        guards: Box<[CompiledGuard]>,
        exit: u32,
    },
    Store {
        addr: Addr,
        value: Box<[SOp]>,
    },
    Intrin {
        id: u32,
    },
    EpiEw {
        chain: Box<[EwStep]>,
    },
    EpiRowStat {
        kind: RowStatKind,
    },
    EpiRowApply {
        kind: RowApplyKind,
    },
}

/// The epilogue context shared by every `Epi*` op on a tape: which buffer
/// the region transforms and its logical-vs-padded geometry.
#[derive(Debug, Clone, Copy)]
struct TapeEpi {
    out: u32,
    geom: EpiGeom,
}

/// Compile-time statistics, primarily for tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TapeStats {
    /// Total tape instructions.
    pub ops: usize,
    /// Tensorized-instruction sites.
    pub intrin_sites: usize,
    /// Buffer accesses proven in-bounds at compile time (no runtime test).
    pub unchecked_accesses: usize,
    /// Buffer accesses that keep a runtime bounds test.
    pub checked_accesses: usize,
    /// Residue-guard conditions discharged statically.
    pub elided_guards: usize,
    /// Epilogue instructions lowered into the tape (bias, relu, residual
    /// add, requantize, softmax, layernorm sites executing inside the
    /// dispatch loop instead of as reference passes).
    pub epilogue_ops: usize,
}

/// Run-time execution counters, accumulated into a [`TapeScratch`]
/// across every [`Tape::run`] that reuses it. The counters are plain
/// local increments inside the dispatch loop (no atomics, no branches),
/// so they cost nothing measurable; the serving layer reads them
/// per-dispatch to attribute work (and scratch reuse, via `runs`) in
/// request traces. Compare with [`TapeStats`]: that is what the
/// compiler *decided* (e.g. `elided_guards`), this is what an execution
/// actually *did* (e.g. `guards_executed`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TapeProfile {
    /// Completed [`Tape::run`] calls through this scratch (values above
    /// 1 demonstrate scratch reuse — the steady-state serving mode).
    pub runs: u64,
    /// Tape instructions retired (loop bookkeeping included).
    pub ops_retired: u64,
    /// Residue-guard conditions evaluated at run time. Statically
    /// discharged conditions ([`TapeStats::elided_guards`]) never reach
    /// the tape, so they are absent here by construction.
    pub guards_executed: u64,
    /// Tensorized-intrinsic dispatches executed.
    pub intrin_dispatches: u64,
}

/// A compiled, immutable, shareable instruction tape. `Tape` is `Sync`:
/// one compiled tape serves concurrent workers, each with its own
/// [`TapeScratch`].
pub struct Tape {
    name: String,
    decls: Vec<BufferDecl>,
    n_vars: usize,
    ops: Vec<TapeOp>,
    intrins: Vec<CompiledIntrin>,
    epi: Option<TapeEpi>,
    stats: TapeStats,
}

/// Reusable mutable execution state for one [`Tape`]. Allocate once with
/// [`Tape::scratch`] and reuse across calls — a steady-state run touches no
/// allocator.
pub struct TapeScratch {
    env: Vec<i64>,
    idx_stack: Vec<i64>,
    val_stack: Vec<Scalar>,
    /// One register file per intrinsic site.
    regs: Vec<Vec<TypedBuf>>,
    /// Per-row statistic files for row-reduction epilogues
    /// (`batch * rows` entries each; empty without an epilogue).
    row_a: Vec<i64>,
    row_b: Vec<i64>,
    /// Row gather window for two-pass statistics (`cols` entries).
    row_tmp: Vec<i64>,
    /// Cumulative execution counters (see [`TapeProfile`]).
    profile: TapeProfile,
}

impl TapeScratch {
    /// Cumulative execution counters since construction (or the last
    /// [`TapeScratch::reset_profile`]).
    #[must_use]
    pub fn profile(&self) -> TapeProfile {
        self.profile
    }

    /// Zero the execution counters (the scratch buffers are untouched).
    pub fn reset_profile(&mut self) {
        self.profile = TapeProfile::default();
    }
}

impl Tape {
    /// Lower a function into a tape.
    ///
    /// All structural validation the interpreter performs per run happens
    /// here once: index-arity checks ([`ExecError::IndexArity`]), intrinsic
    /// resolution, operand-count and accumulator requirements, and lane
    /// register-range validation.
    ///
    /// # Errors
    ///
    /// The same [`ExecError`] variants the interpreter reports for the
    /// equivalent malformed function.
    pub fn compile(func: &TirFunc) -> Result<Tape, ExecError> {
        let mut c = Compiler {
            func,
            ops: Vec::new(),
            intrins: Vec::new(),
            stats: TapeStats::default(),
        };
        c.stmt(&func.body)?;
        let epi = match &func.epilogue {
            Some(region) => Some(c.epilogue(region, func.output)?),
            None => None,
        };
        c.stats.ops = c.ops.len();
        c.stats.intrin_sites = c.intrins.len();
        Ok(Tape {
            name: func.name.clone(),
            decls: func.buffers.clone(),
            n_vars: func.vars.len(),
            ops: c.ops,
            intrins: c.intrins,
            epi,
            stats: c.stats,
        })
    }

    /// The source function's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Compile-time statistics.
    #[must_use]
    pub fn stats(&self) -> TapeStats {
        self.stats
    }

    /// Allocate an execution scratch sized for this tape.
    #[must_use]
    pub fn scratch(&self) -> TapeScratch {
        TapeScratch {
            env: vec![0; self.n_vars],
            idx_stack: Vec::with_capacity(8),
            val_stack: Vec::with_capacity(8),
            regs: self
                .intrins
                .iter()
                .map(|ci| ci.reg_templates.clone())
                .collect(),
            row_a: vec![0; self.row_file_len()],
            row_b: vec![0; self.row_file_len()],
            row_tmp: vec![0; self.epi.map_or(0, |e| e.geom.cols as usize)],
            profile: TapeProfile::default(),
        }
    }

    fn row_file_len(&self) -> usize {
        self.epi
            .map_or(0, |e| (e.geom.batch * e.geom.rows) as usize)
    }

    /// Execute the tape on `bufs` (`bufs[i]` binds buffer `i`), reusing
    /// `scratch`.
    ///
    /// # Errors
    ///
    /// See [`ExecError`]; buffer validation matches [`crate::exec::run`].
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was not created by [`Tape::scratch`] on a tape
    /// of identical shape (a programmer error, not input-dependent).
    pub fn run(&self, bufs: &mut [TypedBuf], scratch: &mut TapeScratch) -> Result<(), ExecError> {
        if bufs.len() != self.decls.len() {
            return Err(ExecError::BufferCount {
                expected: self.decls.len(),
                got: bufs.len(),
            });
        }
        for (decl, buf) in self.decls.iter().zip(bufs.iter()) {
            if decl.len() != buf.len() || decl.dtype != buf.dtype {
                return Err(ExecError::BufferDecl(format!(
                    "buffer {} expects {} x {}, got {} x {}",
                    decl.name,
                    decl.len(),
                    decl.dtype,
                    buf.len(),
                    buf.dtype
                )));
            }
        }
        assert_eq!(scratch.env.len(), self.n_vars, "scratch from another tape");
        assert_eq!(
            scratch.regs.len(),
            self.intrins.len(),
            "scratch from another tape"
        );
        assert_eq!(
            scratch.row_a.len(),
            self.row_file_len(),
            "scratch from another tape"
        );

        // Profile counters stay in locals through the loop (register
        // pressure over memory traffic) and flush to the scratch once.
        let mut prof_ops = 0u64;
        let mut prof_guards = 0u64;
        let mut prof_intrins = 0u64;
        let mut ip = 0usize;
        while ip < self.ops.len() {
            prof_ops += 1;
            match &self.ops[ip] {
                TapeOp::Loop { var } => scratch.env[*var as usize] = 0,
                TapeOp::End { var, extent, top } => {
                    let v = &mut scratch.env[*var as usize];
                    *v += 1;
                    if *v < *extent {
                        ip = *top as usize;
                        continue;
                    }
                }
                TapeOp::Guard { guards, exit } => {
                    let mut taken = false;
                    for g in guards.iter() {
                        prof_guards += 1;
                        if g.prog.eval(&scratch.env, &mut scratch.idx_stack) >= g.bound {
                            taken = true;
                            break;
                        }
                    }
                    if taken {
                        ip = *exit as usize;
                        continue;
                    }
                }
                TapeOp::Store { addr, value } => {
                    let v = Self::value(
                        value,
                        bufs,
                        &scratch.env,
                        &mut scratch.idx_stack,
                        &mut scratch.val_stack,
                    )?;
                    let at = addr.eval(&scratch.env, &mut scratch.idx_stack)?;
                    bufs[addr.buffer as usize].set(at, v);
                }
                TapeOp::Intrin { id } => {
                    prof_intrins += 1;
                    let ci = &self.intrins[*id as usize];
                    let regs = &mut scratch.regs[*id as usize];
                    for reg in regs.iter_mut() {
                        reg.fill_zero();
                    }
                    for (reg_idx, plan) in &ci.loads {
                        Self::gather(
                            plan,
                            bufs,
                            &scratch.env,
                            &mut scratch.idx_stack,
                            &mut regs[*reg_idx as usize],
                        )?;
                    }
                    let (acc_reg, acc_plan) = &ci.acc;
                    Self::gather(
                        acc_plan,
                        bufs,
                        &scratch.env,
                        &mut scratch.idx_stack,
                        &mut regs[*acc_reg as usize],
                    )?;
                    unit_isa::execute(&ci.intrin, regs)
                        .map_err(|e| ExecError::Emulation(e.to_string()))?;
                    Self::scatter(
                        &ci.dst,
                        bufs,
                        &scratch.env,
                        &mut scratch.idx_stack,
                        &regs[ci.out_reg as usize],
                    )?;
                }
                TapeOp::EpiEw { chain } => {
                    let e = self.epi.expect("epilogue op on a tape without a region");
                    let (g, out) = (e.geom, e.out as usize);
                    let dtype = bufs[out].dtype;
                    for b in 0..g.batch {
                        for i in 0..g.rows {
                            for j in 0..g.cols {
                                let at = g.flat(b, i, j);
                                let mut x = cell_to_i64(bufs[out].get(at));
                                for step in chain.iter() {
                                    x = match *step {
                                        EwStep::Bias { buf } => {
                                            x + cell_to_i64(bufs[buf as usize].get(j as usize))
                                        }
                                        EwStep::Add { buf } => {
                                            let r = ((b * g.rows + i) * g.cols + j) as usize;
                                            x + cell_to_i64(bufs[buf as usize].get(r))
                                        }
                                        EwStep::Relu => x.max(0),
                                        EwStep::Quant => requantize(x),
                                    };
                                }
                                bufs[out].set(at, i64_to_cell(dtype, x));
                            }
                        }
                    }
                }
                TapeOp::EpiRowStat { kind } => {
                    let e = self.epi.expect("epilogue op on a tape without a region");
                    let (g, out) = (e.geom, e.out as usize);
                    for b in 0..g.batch {
                        for i in 0..g.rows {
                            let row = (b * g.rows + i) as usize;
                            match kind {
                                RowStatKind::Max => {
                                    let mut m = i64::MIN;
                                    for j in 0..g.cols {
                                        m = m.max(cell_to_i64(bufs[out].get(g.flat(b, i, j))));
                                    }
                                    scratch.row_a[row] = m;
                                }
                                RowStatKind::Sum => {
                                    let mut s = 0i64;
                                    for j in 0..g.cols {
                                        s += cell_to_i64(bufs[out].get(g.flat(b, i, j)));
                                    }
                                    scratch.row_a[row] = s;
                                }
                                RowStatKind::MeanSigma => {
                                    for j in 0..g.cols {
                                        scratch.row_tmp[j as usize] =
                                            cell_to_i64(bufs[out].get(g.flat(b, i, j)));
                                    }
                                    let (mean, sigma) = mean_sigma(&scratch.row_tmp);
                                    scratch.row_a[row] = mean;
                                    scratch.row_b[row] = sigma;
                                }
                            }
                        }
                    }
                }
                TapeOp::EpiRowApply { kind } => {
                    let e = self.epi.expect("epilogue op on a tape without a region");
                    let (g, out) = (e.geom, e.out as usize);
                    let dtype = bufs[out].dtype;
                    for b in 0..g.batch {
                        for i in 0..g.rows {
                            let row = (b * g.rows + i) as usize;
                            for j in 0..g.cols {
                                let at = g.flat(b, i, j);
                                let x = cell_to_i64(bufs[out].get(at));
                                let y = match kind {
                                    RowApplyKind::Exp => exp_q15(scratch.row_a[row] - x),
                                    RowApplyKind::Prob => softmax_prob(x, scratch.row_a[row]),
                                    RowApplyKind::Norm => {
                                        layernorm_cell(x, scratch.row_a[row], scratch.row_b[row])
                                    }
                                };
                                bufs[out].set(at, i64_to_cell(dtype, y));
                            }
                        }
                    }
                }
            }
            ip += 1;
        }
        scratch.profile.runs += 1;
        scratch.profile.ops_retired += prof_ops;
        scratch.profile.guards_executed += prof_guards;
        scratch.profile.intrin_dispatches += prof_intrins;
        Ok(())
    }

    /// One-shot convenience: allocates a fresh scratch. Prefer
    /// [`Tape::run`] with a reused scratch on hot paths.
    ///
    /// # Errors
    ///
    /// See [`Tape::run`].
    pub fn run_fresh(&self, bufs: &mut [TypedBuf]) -> Result<(), ExecError> {
        self.run(bufs, &mut self.scratch())
    }

    fn value(
        ops: &[SOp],
        bufs: &[TypedBuf],
        env: &[i64],
        idx_stack: &mut Vec<i64>,
        stack: &mut Vec<Scalar>,
    ) -> Result<Scalar, ExecError> {
        stack.clear();
        for op in ops {
            match op {
                SOp::Const(s) => stack.push(*s),
                SOp::Load(addr) => {
                    let at = addr.eval(env, idx_stack)?;
                    stack.push(bufs[addr.buffer as usize].get(at));
                }
                SOp::Cast { from, to } => {
                    let v = stack.pop().expect("cast operand");
                    stack.push(v.cast(*from, *to));
                }
                SOp::Bin { op, dtype } => {
                    let b = stack.pop().expect("bin rhs");
                    let a = stack.pop().expect("bin lhs");
                    stack.push(Scalar::binop(*op, a, b, *dtype));
                }
            }
        }
        Ok(stack.pop().expect("value result"))
    }

    fn gather(
        plan: &OperandPlan,
        bufs: &[TypedBuf],
        env: &[i64],
        idx_stack: &mut Vec<i64>,
        reg: &mut TypedBuf,
    ) -> Result<(), ExecError> {
        let base = plan.base.eval(env, idx_stack);
        let buf = &bufs[plan.buffer as usize];
        for &(reg_at, mem_off) in plan.lanes.iter() {
            let at = base + mem_off;
            if plan.checked && (at < 0 || at as usize >= plan.len) {
                return Err(ExecError::OutOfBounds {
                    buffer: plan.buffer,
                    index: at,
                    len: plan.len,
                });
            }
            reg.set(reg_at as usize, buf.get(at as usize));
        }
        Ok(())
    }

    fn scatter(
        plan: &OperandPlan,
        bufs: &mut [TypedBuf],
        env: &[i64],
        idx_stack: &mut Vec<i64>,
        reg: &TypedBuf,
    ) -> Result<(), ExecError> {
        let base = plan.base.eval(env, idx_stack);
        let buf = &mut bufs[plan.buffer as usize];
        for &(reg_at, mem_off) in plan.lanes.iter() {
            let at = base + mem_off;
            if plan.checked && (at < 0 || at as usize >= plan.len) {
                return Err(ExecError::OutOfBounds {
                    buffer: plan.buffer,
                    index: at,
                    len: plan.len,
                });
            }
            buf.set(at as usize, reg.get(reg_at as usize));
        }
        Ok(())
    }
}

struct Compiler<'a> {
    func: &'a TirFunc,
    ops: Vec<TapeOp>,
    intrins: Vec<CompiledIntrin>,
    stats: TapeStats,
}

impl Compiler<'_> {
    /// Lower an epilogue region into tape ops appended after the body.
    /// Consecutive elementwise instructions batch into a single `EpiEw`
    /// chain (one pass over the output instead of one per op — the fused
    /// serving win); row reductions lower to their stat/apply pairs.
    fn epilogue(
        &mut self,
        region: &unit_tir::Epilogue,
        output: BufId,
    ) -> Result<TapeEpi, ExecError> {
        let g = region.geom;
        let out_decl = self.func.buffer(output);
        if !g.fits(out_decl.len()) {
            return Err(ExecError::BufferDecl(format!(
                "epilogue geometry {g:?} escapes output {} of {} elements",
                out_decl.name,
                out_decl.len()
            )));
        }
        let mut chain: Vec<EwStep> = Vec::new();
        for instr in &region.instrs {
            // Operand validation mirrors the oracle: the id must name a
            // declared buffer large enough for the op's access pattern.
            let operand = match instr.operand {
                Some(id) => {
                    if id.0 as usize >= self.func.buffers.len() {
                        return Err(ExecError::BufferCount {
                            expected: id.0 as usize + 1,
                            got: self.func.buffers.len(),
                        });
                    }
                    let decl = self.func.buffer(id);
                    let need = match instr.op {
                        EpiOp::Bias => g.cols,
                        EpiOp::Add => g.batch * g.rows * g.cols,
                        _ => 0,
                    } as usize;
                    if decl.len() < need {
                        return Err(ExecError::BufferDecl(format!(
                            "epilogue operand {} holds {} elements, needs {need}",
                            decl.name,
                            decl.len()
                        )));
                    }
                    Some(id.0)
                }
                None => None,
            };
            match instr.op {
                EpiOp::Bias => chain.push(EwStep::Bias {
                    buf: operand.expect("bias carries an operand"),
                }),
                EpiOp::Add => chain.push(EwStep::Add {
                    buf: operand.expect("add carries an operand"),
                }),
                EpiOp::Relu => chain.push(EwStep::Relu),
                EpiOp::Quant => chain.push(EwStep::Quant),
                EpiOp::Softmax => {
                    self.flush_ew(&mut chain);
                    self.ops.push(TapeOp::EpiRowStat {
                        kind: RowStatKind::Max,
                    });
                    self.ops.push(TapeOp::EpiRowApply {
                        kind: RowApplyKind::Exp,
                    });
                    self.ops.push(TapeOp::EpiRowStat {
                        kind: RowStatKind::Sum,
                    });
                    self.ops.push(TapeOp::EpiRowApply {
                        kind: RowApplyKind::Prob,
                    });
                }
                EpiOp::LayerNorm => {
                    self.flush_ew(&mut chain);
                    self.ops.push(TapeOp::EpiRowStat {
                        kind: RowStatKind::MeanSigma,
                    });
                    self.ops.push(TapeOp::EpiRowApply {
                        kind: RowApplyKind::Norm,
                    });
                }
            }
            self.stats.epilogue_ops += 1;
        }
        self.flush_ew(&mut chain);
        Ok(TapeEpi {
            out: output.0,
            geom: g,
        })
    }

    fn flush_ew(&mut self, chain: &mut Vec<EwStep>) {
        if !chain.is_empty() {
            self.ops.push(TapeOp::EpiEw {
                chain: std::mem::take(chain).into(),
            });
        }
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), ExecError> {
        match s {
            Stmt::For(fs) => {
                if fs.extent <= 0 {
                    return Ok(()); // statically empty: emit nothing
                }
                let top = self.ops.len() as u32 + 1;
                self.ops.push(TapeOp::Loop { var: fs.var.0 });
                self.stmt(&fs.body)?;
                self.ops.push(TapeOp::End {
                    var: fs.var.0,
                    extent: fs.extent,
                    top,
                });
                Ok(())
            }
            Stmt::Seq(items) => {
                for st in items {
                    self.stmt(st)?;
                }
                Ok(())
            }
            Stmt::Store(st) => {
                let mut value = Vec::new();
                self.texpr(&st.value, &mut value)?;
                let addr = self.addr(st.buffer, &st.indices)?;
                self.ops.push(TapeOp::Store {
                    addr,
                    value: value.into(),
                });
                Ok(())
            }
            Stmt::IfLikely { guards, body } => self.guarded(guards, body),
            Stmt::Intrin(is) => {
                let id = self.intrin(is)?;
                self.ops.push(TapeOp::Intrin { id });
                Ok(())
            }
            Stmt::Sync | Stmt::Nop => Ok(()),
        }
    }

    /// Compile a guarded body, discharging statically decidable conditions.
    fn guarded(&mut self, guards: &[Guard], body: &Stmt) -> Result<(), ExecError> {
        let extent_of = self.func.extent_of();
        let mut kept = Vec::new();
        for g in guards {
            let (lo, hi) = g.index.bounds(&extent_of);
            if hi < g.bound {
                // Always true: the residue guard never fires on this tape.
                self.stats.elided_guards += 1;
            } else if lo >= g.bound {
                // Always false: the body is dead, emit nothing.
                self.stats.elided_guards += 1;
                return Ok(());
            } else {
                kept.push(CompiledGuard {
                    prog: IdxProg::compile(&g.index),
                    bound: g.bound,
                });
            }
        }
        if kept.is_empty() {
            return self.stmt(body);
        }
        let at = self.ops.len();
        self.ops.push(TapeOp::Guard {
            guards: kept.into(),
            exit: 0, // patched below
        });
        self.stmt(body)?;
        let exit = self.ops.len() as u32;
        match &mut self.ops[at] {
            TapeOp::Guard { exit: e, .. } => *e = exit,
            _ => unreachable!("guard site moved"),
        }
        Ok(())
    }

    /// Fold indices and strides into one flat index expression, validating
    /// arity exactly like the interpreter.
    fn flat_expr(&self, buffer: BufId, indices: &[IdxExpr]) -> Result<IdxExpr, ExecError> {
        let strides = self.func.buffer(buffer).strides();
        if indices.len() != strides.len() {
            return Err(ExecError::IndexArity {
                buffer: buffer.0,
                expected: strides.len(),
                got: indices.len(),
            });
        }
        let mut flat = IdxExpr::Const(0);
        for (ix, s) in indices.iter().zip(&strides) {
            flat = flat.add(ix.clone().mul(*s));
        }
        Ok(flat)
    }

    fn addr(&mut self, buffer: BufId, indices: &[IdxExpr]) -> Result<Addr, ExecError> {
        let flat = self.flat_expr(buffer, indices)?;
        let len = self.func.buffer(buffer).len();
        let (lo, hi) = flat.bounds(&self.func.extent_of());
        let checked = !(lo >= 0 && hi < len as i64);
        if checked {
            self.stats.checked_accesses += 1;
        } else {
            self.stats.unchecked_accesses += 1;
        }
        Ok(Addr {
            buffer: buffer.0,
            prog: IdxProg::compile(&flat),
            len,
            checked,
        })
    }

    fn texpr(&mut self, e: &TExpr, out: &mut Vec<SOp>) -> Result<DType, ExecError> {
        match e {
            TExpr::Int(v, dt) => {
                out.push(SOp::Const(Scalar::Int(*v).wrap(*dt)));
                Ok(*dt)
            }
            TExpr::Float(bits, dt) => {
                out.push(SOp::Const(Scalar::Float(f64::from_bits(*bits)).wrap(*dt)));
                Ok(*dt)
            }
            TExpr::Load { buffer, indices } => {
                let addr = self.addr(*buffer, indices)?;
                out.push(SOp::Load(addr));
                Ok(self.func.buffer(*buffer).dtype)
            }
            TExpr::Cast(dt, inner) => {
                let from = self.texpr(inner, out)?;
                out.push(SOp::Cast { from, to: *dt });
                Ok(*dt)
            }
            TExpr::Bin(op, lhs, rhs) => {
                let dt = self.texpr(lhs, out)?;
                self.texpr(rhs, out)?;
                out.push(SOp::Bin { op: *op, dtype: dt });
                Ok(dt)
            }
        }
    }

    /// Compile one operand's gather/scatter plan: precompute the lane
    /// pattern, validate every lane's register index, and prove bounds for
    /// `base + mem_off` where possible.
    fn operand(&mut self, spec: &OperandSpec, reg_len: usize) -> Result<OperandPlan, ExecError> {
        let lanes = spec.lanes();
        for &(reg_at, _) in &lanes {
            if reg_at < 0 || reg_at as usize >= reg_len {
                return Err(ExecError::Emulation(format!(
                    "operand lane register index {reg_at} escapes register length {reg_len}"
                )));
            }
        }
        let len = self.func.buffer(spec.buffer).len();
        let (lo, hi) = spec.base.bounds(&self.func.extent_of());
        let min_off = lanes.iter().map(|&(_, m)| m).min().unwrap_or(0);
        let max_off = lanes.iter().map(|&(_, m)| m).max().unwrap_or(0);
        let checked = !(lo + min_off >= 0 && hi + max_off < len as i64);
        if checked {
            self.stats.checked_accesses += 1;
        } else {
            self.stats.unchecked_accesses += 1;
        }
        Ok(OperandPlan {
            buffer: spec.buffer.0,
            base: IdxProg::compile(&spec.base),
            lanes: lanes.into_iter().map(|(r, m)| (r as u32, m)).collect(),
            len,
            checked,
        })
    }

    fn intrin(&mut self, is: &IntrinStmt) -> Result<u32, ExecError> {
        let intrin = registry::by_name(&is.intrinsic)
            .ok_or_else(|| ExecError::UnknownIntrinsic(is.intrinsic.clone()))?;
        let sem = &intrin.semantics;
        let reg_templates: Vec<TypedBuf> = sem
            .tensors
            .iter()
            .map(|t| TypedBuf::zeros(t.dtype, t.len()))
            .collect();

        let inst_loads = sem.update.loads();
        if inst_loads.len() != is.srcs.len() {
            return Err(ExecError::Emulation(format!(
                "intrinsic {} expects {} data operands, got {}",
                is.intrinsic,
                inst_loads.len(),
                is.srcs.len()
            )));
        }
        let mut loads = Vec::with_capacity(is.srcs.len());
        for (load, spec) in inst_loads.iter().zip(&is.srcs) {
            let reg = load.tensor.0;
            let plan = self.operand(spec, reg_templates[reg as usize].len())?;
            loads.push((reg, plan));
        }
        let acc = if let Some(acc_reg) = intrin.accumulator_operand() {
            let spec = is.acc.as_ref().ok_or_else(|| {
                ExecError::Emulation(format!(
                    "intrinsic {} requires an accumulator operand",
                    is.intrinsic
                ))
            })?;
            let plan = self.operand(spec, reg_templates[acc_reg.0 as usize].len())?;
            (acc_reg.0, plan)
        } else {
            // In-place accumulation: seed the destination register.
            let out = sem.output;
            let plan = self.operand(&is.dst, reg_templates[out.0 as usize].len())?;
            (out.0, plan)
        };
        let out_reg = sem.output.0;
        let dst = self.operand(&is.dst, reg_templates[out_reg as usize].len())?;

        let id = self.intrins.len() as u32;
        self.intrins.push(CompiledIntrin {
            intrin,
            reg_templates,
            loads,
            acc,
            dst,
            out_reg,
        });
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::{alloc_buffers, random_fill};
    use crate::exec::run;
    use unit_dsl::builder::{conv2d_hwc, matmul_u8i8};
    use unit_tir::{lower::lower, schedule::Schedule};

    /// Compile + run the tape and the interpreter on identical inputs;
    /// every buffer must match bit-for-bit.
    fn assert_tape_matches_interp(func: &TirFunc, seed: u64) -> Tape {
        let tape = Tape::compile(func).expect("tape compiles");
        let mut tape_bufs = alloc_buffers(func);
        random_fill(&mut tape_bufs, seed);
        let mut interp_bufs = tape_bufs.clone();
        tape.run_fresh(&mut tape_bufs).expect("tape runs");
        run(func, &mut interp_bufs).expect("interpreter runs");
        assert_eq!(tape_bufs, interp_bufs, "tape diverged from interpreter");
        tape
    }

    #[test]
    fn default_lowering_matches_interpreter_with_all_checks_elided() {
        let op = matmul_u8i8(6, 10, 24);
        let func = lower(&Schedule::new(&op), "mm").unwrap();
        let tape = assert_tape_matches_interp(&func, 11);
        // Perfect loop nests are fully provable: no runtime bounds tests
        // survive on the tape.
        let stats = tape.stats();
        assert!(stats.unchecked_accesses > 0);
        assert_eq!(stats.checked_accesses, 0);
    }

    #[test]
    fn fused_schedule_exercises_the_rpn_fallback() {
        // Fusing introduces div/mod index expressions that defeat the
        // affine fast path.
        let op = conv2d_hwc(8, 8, 8, 16, 3, 3);
        let mut s = Schedule::new(&op);
        let ls = s.leaves();
        let (_ko, ki) = s.split(ls[2], 4).unwrap();
        let f = s.fuse(ls[0], ls[1]).unwrap();
        s.reorder(&[f]).unwrap();
        s.annotate(ki, unit_tir::LoopKind::Unrolled).unwrap();
        let func = lower(&s, "conv_fused").unwrap();
        assert_tape_matches_interp(&func, 3);
    }

    #[test]
    fn imperfect_tiling_keeps_residue_guards_on_the_tape() {
        // 30 % 8 != 0: the residue guard survives compilation and fires.
        let op = matmul_u8i8(30, 10, 12);
        let mut s = Schedule::new(&op);
        let ls = s.leaves();
        let (_, _) = s.split(ls[0], 8).unwrap();
        let func = lower(&s, "mm_resid").unwrap();
        let tape = assert_tape_matches_interp(&func, 5);
        assert!(
            tape.stats().ops > 0,
            "residue kernel must compile to a non-empty tape"
        );
    }

    #[test]
    fn perfect_split_guards_are_discharged_at_compile_time() {
        // 32 % 8 == 0: any guard the lowering emits is statically true.
        let op = matmul_u8i8(32, 10, 12);
        let mut s = Schedule::new(&op);
        let ls = s.leaves();
        let (_, _) = s.split(ls[0], 8).unwrap();
        let func = lower(&s, "mm_even").unwrap();
        let tape = assert_tape_matches_interp(&func, 7);
        let has_runtime_guard = tape.ops.iter().any(|op| matches!(op, TapeOp::Guard { .. }));
        assert!(!has_runtime_guard, "perfect split must not keep guards");
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        let op = matmul_u8i8(6, 10, 24);
        let func = lower(&Schedule::new(&op), "mm").unwrap();
        let tape = Tape::compile(&func).unwrap();
        let mut scratch = tape.scratch();
        let mut first = alloc_buffers(&func);
        random_fill(&mut first, 9);
        let mut second = first.clone();
        tape.run(&mut first, &mut scratch).unwrap();
        tape.run(&mut second, &mut scratch).unwrap();
        assert_eq!(first, second, "scratch reuse must not leak state");
    }

    #[test]
    fn profile_counts_runs_ops_and_dispatches() {
        let op = matmul_u8i8(6, 10, 24);
        let func = lower(&Schedule::new(&op), "mm").unwrap();
        let tape = Tape::compile(&func).unwrap();
        let mut scratch = tape.scratch();
        assert_eq!(scratch.profile(), TapeProfile::default());
        let mut bufs = alloc_buffers(&func);
        random_fill(&mut bufs, 9);
        tape.run(&mut bufs, &mut scratch).unwrap();
        let once = scratch.profile();
        assert_eq!(once.runs, 1);
        assert!(once.ops_retired >= tape.stats().ops as u64);
        assert!(once.intrin_dispatches >= 1 || tape.stats().intrin_sites == 0);
        tape.run(&mut bufs, &mut scratch).unwrap();
        let twice = scratch.profile();
        assert_eq!(twice.runs, 2, "reused scratch accumulates run count");
        assert_eq!(twice.ops_retired, 2 * once.ops_retired);
        assert_eq!(twice.guards_executed, 2 * once.guards_executed);
        assert_eq!(twice.intrin_dispatches, 2 * once.intrin_dispatches);
        scratch.reset_profile();
        assert_eq!(scratch.profile(), TapeProfile::default());
    }

    #[test]
    fn buffer_validation_matches_interpreter() {
        let op = matmul_u8i8(4, 4, 8);
        let func = lower(&Schedule::new(&op), "mm").unwrap();
        let tape = Tape::compile(&func).unwrap();
        let mut bufs = alloc_buffers(&func);
        bufs.pop();
        assert!(matches!(
            tape.run_fresh(&mut bufs),
            Err(ExecError::BufferCount { .. })
        ));
    }

    #[test]
    fn tape_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Tape>();
    }

    #[test]
    fn fused_epilogue_matches_oracle_and_batches_elementwise_chains() {
        use unit_tir::epilogue::EpiOp as E;
        use unit_tir::epilogue::{attach_epilogue, EpiGeom, EpilogueSpec};
        let op = matmul_u8i8(6, 10, 24);
        let mut func = lower(&Schedule::new(&op), "mm_epi").unwrap();
        // Rank-2 output [6, 10]: describe it as one batch, no padding.
        let geom = EpiGeom {
            batch: 1,
            rows: 6,
            cols: 10,
            rows_pad: 6,
            cols_pad: 10,
        };
        let spec =
            EpilogueSpec::new(&[E::Bias, E::Add, E::Relu, E::Softmax, E::LayerNorm, E::Quant]);
        attach_epilogue(&mut func, &spec, geom);
        let tape = assert_tape_matches_interp(&func, 13);
        assert_eq!(tape.stats().epilogue_ops, 6);
        // bias+add+relu collapse into ONE elementwise pass; softmax is 4
        // row ops, layernorm 2, quant 1 more elementwise pass.
        let ew = tape
            .ops
            .iter()
            .filter(|o| matches!(o, TapeOp::EpiEw { .. }))
            .count();
        assert_eq!(ew, 2, "consecutive elementwise ops must batch");
    }

    #[test]
    fn epilogue_geometry_escape_fails_compile() {
        use unit_tir::epilogue::{attach_epilogue, EpiGeom, EpiOp as E, EpilogueSpec};
        let op = matmul_u8i8(4, 4, 8);
        let mut func = lower(&Schedule::new(&op), "mm_bad").unwrap();
        let geom = EpiGeom {
            batch: 1,
            rows: 8,
            cols: 8,
            rows_pad: 8,
            cols_pad: 8,
        };
        attach_epilogue(&mut func, &EpilogueSpec::new(&[E::Relu]), geom);
        assert!(matches!(
            Tape::compile(&func),
            Err(ExecError::BufferDecl(_))
        ));
    }
}
