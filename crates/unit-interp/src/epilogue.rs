//! Shared fused-epilogue evaluation over typed buffers.
//!
//! Both executors funnel epilogue math through this module: the tree-walk
//! oracle ([`crate::exec::run`]) calls [`run_epilogue`] after the body
//! walk, and the instruction tape ([`crate::tape`]) lowers the same
//! [`unit_tir::Epilogue`] into bytecode whose arms call the *same*
//! per-cell helpers from [`unit_tir::epilogue`]. One implementation of
//! the numerics, two execution strategies — bit identity by construction.
//!
//! All epilogue math is fixed-point over `i64`: cells are read through
//! [`cell_to_i64`] (floats floor-truncate), transformed exactly, and
//! written back through [`i64_to_cell`] in the buffer's scalar class.
//! On float accumulators (the GPU target) the serving value domain keeps
//! every intermediate below 2^24, so the round-trip through `f32` is
//! exact and the integer semantics survive unchanged.

use unit_isa::{Scalar, TypedBuf};
use unit_tir::epilogue::{
    exp_q15, layernorm_cell, mean_sigma, requantize, softmax_prob, EpiOp, Epilogue,
};
use unit_tir::BufId;

use crate::exec::ExecError;

/// Read one cell as an exact `i64` (floats floor-truncate via `as`).
#[inline]
#[must_use]
pub fn cell_to_i64(s: Scalar) -> i64 {
    match s {
        Scalar::Int(v) => v,
        Scalar::Float(f) => f as i64,
    }
}

/// Encode an `i64` in the scalar class a buffer of `dtype` stores.
#[inline]
#[must_use]
pub fn i64_to_cell(dtype: unit_dsl::DType, v: i64) -> Scalar {
    if dtype.is_float() {
        Scalar::Float(v as f64)
    } else {
        Scalar::Int(v)
    }
}

/// Apply a function's epilogue region to its output buffer, reference
/// style: one full pass over the logical cells per instruction, row
/// reductions gathered per row. This is the differential oracle the
/// tape's fused arms are validated against.
///
/// # Errors
///
/// [`ExecError::BufferDecl`] when the geometry escapes the output buffer
/// or an operand buffer is smaller than its declaration demands;
/// [`ExecError::BufferCount`] when an operand id is out of range.
pub fn run_epilogue(epi: &Epilogue, output: BufId, bufs: &mut [TypedBuf]) -> Result<(), ExecError> {
    let g = epi.geom;
    let out_ix = output.0 as usize;
    if out_ix >= bufs.len() {
        return Err(ExecError::BufferCount {
            expected: out_ix + 1,
            got: bufs.len(),
        });
    }
    if !g.fits(bufs[out_ix].len()) {
        return Err(ExecError::BufferDecl(format!(
            "epilogue geometry {g:?} escapes output of {} elements",
            bufs[out_ix].len()
        )));
    }
    let dtype = bufs[out_ix].dtype;
    for instr in &epi.instrs {
        let operand = match instr.operand {
            Some(id) => {
                let ix = id.0 as usize;
                if ix >= bufs.len() {
                    return Err(ExecError::BufferCount {
                        expected: ix + 1,
                        got: bufs.len(),
                    });
                }
                let need = match instr.op {
                    EpiOp::Bias => g.cols,
                    EpiOp::Add => g.batch * g.rows * g.cols,
                    _ => 0,
                } as usize;
                if bufs[ix].len() < need {
                    return Err(ExecError::BufferDecl(format!(
                        "epilogue operand b{ix} holds {} elements, needs {need}",
                        bufs[ix].len()
                    )));
                }
                Some(ix)
            }
            None => None,
        };
        match instr.op {
            EpiOp::Bias | EpiOp::Add | EpiOp::Relu | EpiOp::Quant => {
                for b in 0..g.batch {
                    for i in 0..g.rows {
                        for j in 0..g.cols {
                            let at = g.flat(b, i, j);
                            let mut x = cell_to_i64(bufs[out_ix].get(at));
                            x = match instr.op {
                                EpiOp::Bias => {
                                    let op_ix = operand.expect("bias has an operand");
                                    x + cell_to_i64(bufs[op_ix].get(j as usize))
                                }
                                EpiOp::Add => {
                                    let op_ix = operand.expect("add has an operand");
                                    let r = ((b * g.rows + i) * g.cols + j) as usize;
                                    x + cell_to_i64(bufs[op_ix].get(r))
                                }
                                EpiOp::Relu => x.max(0),
                                EpiOp::Quant => requantize(x),
                                _ => unreachable!(),
                            };
                            bufs[out_ix].set(at, i64_to_cell(dtype, x));
                        }
                    }
                }
            }
            EpiOp::Softmax => {
                let mut row = vec![0i64; g.cols as usize];
                for b in 0..g.batch {
                    for i in 0..g.rows {
                        for j in 0..g.cols {
                            row[j as usize] = cell_to_i64(bufs[out_ix].get(g.flat(b, i, j)));
                        }
                        let max = row.iter().copied().max().unwrap_or(0);
                        for v in &mut row {
                            *v = exp_q15(max - *v);
                        }
                        let sum: i64 = row.iter().sum();
                        for (j, &e) in row.iter().enumerate() {
                            bufs[out_ix].set(
                                g.flat(b, i, j as i64),
                                i64_to_cell(dtype, softmax_prob(e, sum)),
                            );
                        }
                    }
                }
            }
            EpiOp::LayerNorm => {
                let mut row = vec![0i64; g.cols as usize];
                for b in 0..g.batch {
                    for i in 0..g.rows {
                        for j in 0..g.cols {
                            row[j as usize] = cell_to_i64(bufs[out_ix].get(g.flat(b, i, j)));
                        }
                        let (mean, sigma) = mean_sigma(&row);
                        for (j, &x) in row.iter().enumerate() {
                            bufs[out_ix].set(
                                g.flat(b, i, j as i64),
                                i64_to_cell(dtype, layernorm_cell(x, mean, sigma)),
                            );
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_dsl::DType;
    use unit_tir::epilogue::{EpiGeom, EpilogueInstr};

    fn geom() -> EpiGeom {
        EpiGeom {
            batch: 1,
            rows: 2,
            cols: 3,
            rows_pad: 2,
            cols_pad: 4,
        }
    }

    #[test]
    fn bias_relu_quant_chain_transforms_logical_cells_only() {
        let g = geom();
        let epi = Epilogue {
            geom: g,
            instrs: vec![
                EpilogueInstr {
                    op: EpiOp::Bias,
                    operand: Some(BufId(1)),
                },
                EpilogueInstr {
                    op: EpiOp::Relu,
                    operand: None,
                },
            ],
        };
        let mut out = TypedBuf::zeros(DType::I32, 8);
        for at in 0..8 {
            out.set(at, Scalar::Int(at as i64 - 4));
        }
        let pad_before = out.get(3);
        let mut bias = TypedBuf::zeros(DType::I32, 3);
        bias.set(0, Scalar::Int(10));
        bias.set(2, Scalar::Int(-100));
        let mut bufs = vec![out, bias];
        run_epilogue(&epi, BufId(0), &mut bufs).unwrap();
        // (b0,i0): [-4,-3,-2] + [10,0,-100] → relu → [6,0,0].
        assert_eq!(cell_to_i64(bufs[0].get(0)), 6);
        assert_eq!(cell_to_i64(bufs[0].get(1)), 0);
        assert_eq!(cell_to_i64(bufs[0].get(2)), 0);
        // Padding column untouched.
        assert_eq!(bufs[0].get(3), pad_before);
    }

    #[test]
    fn softmax_rows_sum_near_prob_one() {
        let g = geom();
        let epi = Epilogue {
            geom: g,
            instrs: vec![EpilogueInstr {
                op: EpiOp::Softmax,
                operand: None,
            }],
        };
        let mut out = TypedBuf::zeros(DType::I32, 8);
        // One dominant logit per row.
        out.set(0, Scalar::Int(1 << 20));
        out.set(5, Scalar::Int(1 << 20));
        let mut bufs = vec![out];
        run_epilogue(&epi, BufId(0), &mut bufs).unwrap();
        assert!(cell_to_i64(bufs[0].get(0)) > 100, "dominant logit wins");
        assert!(cell_to_i64(bufs[0].get(1)) < 30);
    }

    #[test]
    fn float_buffers_round_trip_exactly() {
        // The GPU accumulator is f32; serving values stay < 2^24 so the
        // fixed-point semantics are exact there too.
        let g = geom();
        let epi = Epilogue {
            geom: g,
            instrs: vec![EpilogueInstr {
                op: EpiOp::Quant,
                operand: None,
            }],
        };
        let mut out = TypedBuf::zeros(DType::F32, 8);
        out.set(0, Scalar::Float(123456.0));
        out.set(1, Scalar::Float(-99999.0));
        let mut bufs = vec![out];
        run_epilogue(&epi, BufId(0), &mut bufs).unwrap();
        assert_eq!(cell_to_i64(bufs[0].get(0)), requantize(123456));
        assert_eq!(cell_to_i64(bufs[0].get(1)), requantize(-99999));
    }

    #[test]
    fn geometry_escape_is_a_typed_error() {
        let g = geom();
        let epi = Epilogue {
            geom: g,
            instrs: vec![EpilogueInstr {
                op: EpiOp::Relu,
                operand: None,
            }],
        };
        let mut bufs = vec![TypedBuf::zeros(DType::I32, 4)];
        assert!(matches!(
            run_epilogue(&epi, BufId(0), &mut bufs),
            Err(ExecError::BufferDecl(_))
        ));
    }
}
