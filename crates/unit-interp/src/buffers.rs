//! Buffer allocation and deterministic random initialization for tests,
//! examples and the benchmark harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unit_dsl::ComputeOp;
use unit_isa::TypedBuf;
use unit_tir::TirFunc;

/// Allocate one zeroed buffer per declared TIR buffer, in id order.
#[must_use]
pub fn alloc_buffers(func: &TirFunc) -> Vec<TypedBuf> {
    func.buffers
        .iter()
        .map(|b| TypedBuf::zeros(b.dtype, b.len()))
        .collect()
}

/// Allocate one zeroed buffer per tensor of a [`ComputeOp`], in id order.
#[must_use]
pub fn alloc_op_buffers(op: &ComputeOp) -> Vec<TypedBuf> {
    op.tensors
        .iter()
        .map(|t| TypedBuf::zeros(t.dtype, t.len()))
        .collect()
}

/// Fill every buffer with deterministic pseudo-random values appropriate to
/// its dtype: integers over the full storage range, floats in `[-2, 2]`
/// (small enough that fp16 accumulation stays well-conditioned).
pub fn random_fill(bufs: &mut [TypedBuf], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for buf in bufs {
        fill_one(buf, &mut rng);
    }
}

fn fill_one(buf: &mut TypedBuf, rng: &mut StdRng) {
    use unit_dsl::DType;
    let n = buf.len();
    match buf.dtype {
        DType::I8 => {
            for i in 0..n {
                buf.set(i, unit_isa::Scalar::Int(rng.gen_range(-128..=127)));
            }
        }
        DType::U8 => {
            for i in 0..n {
                buf.set(i, unit_isa::Scalar::Int(rng.gen_range(0..=255)));
            }
        }
        DType::I16 => {
            for i in 0..n {
                buf.set(i, unit_isa::Scalar::Int(rng.gen_range(-32768..=32767)));
            }
        }
        DType::U16 => {
            for i in 0..n {
                buf.set(i, unit_isa::Scalar::Int(rng.gen_range(0..=65535)));
            }
        }
        DType::I32 => {
            for i in 0..n {
                buf.set(
                    i,
                    unit_isa::Scalar::Int(rng.gen_range(-1_000_000..=1_000_000)),
                );
            }
        }
        DType::I64 => {
            for i in 0..n {
                buf.set(
                    i,
                    unit_isa::Scalar::Int(rng.gen_range(-1_000_000..=1_000_000)),
                );
            }
        }
        DType::F16 | DType::F32 => {
            for i in 0..n {
                buf.set(i, unit_isa::Scalar::Float(rng.gen_range(-2.0..2.0)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_dsl::builder::matmul_u8i8;
    use unit_tir::{lower::lower, schedule::Schedule};

    #[test]
    fn allocation_matches_declarations() {
        let op = matmul_u8i8(4, 8, 16);
        let func = lower(&Schedule::new(&op), "mm").unwrap();
        let bufs = alloc_buffers(&func);
        assert_eq!(bufs.len(), 3);
        assert_eq!(bufs[0].len(), 64);
        assert_eq!(bufs[2].len(), 32);
        let ob = alloc_op_buffers(&op);
        assert_eq!(ob.len(), bufs.len());
    }

    #[test]
    fn random_fill_is_deterministic_and_in_range() {
        let op = matmul_u8i8(4, 8, 16);
        let mut a = alloc_op_buffers(&op);
        let mut b = alloc_op_buffers(&op);
        random_fill(&mut a, 7);
        random_fill(&mut b, 7);
        assert_eq!(a, b);
        for v in a[0].to_ints() {
            assert!((0..=255).contains(&v));
        }
        for v in a[1].to_ints() {
            assert!((-128..=127).contains(&v));
        }
    }
}
