//! Naive reference execution of [`ComputeOp`]s.
//!
//! This is the "ground truth" side of every correctness comparison: it
//! evaluates the op's DSL semantics directly (via the shared evaluator in
//! [`unit_isa::emulate`]), with no scheduling, tiling or tensorization.

use unit_dsl::ComputeOp;
use unit_isa::{EmulationError, TypedBuf};

use crate::buffers::{alloc_op_buffers, random_fill};

/// Execute `op` on the given buffers (`bufs[t.0]` binds tensor `t`).
///
/// # Errors
///
/// Propagates buffer-shape/dtype validation from the evaluator.
pub fn run_reference(op: &ComputeOp, bufs: &mut [TypedBuf]) -> Result<(), EmulationError> {
    unit_isa::eval_compute_op(op, bufs)
}

/// Convenience for tests: allocate fresh buffers, fill the *inputs* with
/// the same pseudo-random data that [`random_fill`] with `seed` produces,
/// run the reference, and return the output buffer.
///
/// The provided `current` buffers are only used for their shapes; inputs
/// are regenerated from the seed so the caller can compare against a kernel
/// run that consumed identically-seeded buffers.
///
/// # Errors
///
/// Propagates buffer validation from the evaluator.
pub fn reference_output(
    op: &ComputeOp,
    current: &[TypedBuf],
    seed: u64,
) -> Result<TypedBuf, EmulationError> {
    let mut bufs = alloc_op_buffers(op);
    if bufs.len() != current.len() {
        return Err(EmulationError::OperandCount {
            expected: bufs.len(),
            got: current.len(),
        });
    }
    random_fill(&mut bufs, seed);
    unit_isa::eval_compute_op(op, &mut bufs)?;
    Ok(bufs[op.output.0 as usize].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use unit_dsl::builder::{matmul_f16, matmul_u8i8};

    #[test]
    fn reference_matmul_spot_check() {
        let op = matmul_u8i8(2, 2, 3);
        let mut bufs = alloc_op_buffers(&op);
        // a = [[1,2,3],[4,5,6]], b = [[1,0,1],[0,1,0]] (b is [m,k]).
        for (i, v) in [1, 2, 3, 4, 5, 6].iter().enumerate() {
            bufs[0].set(i, unit_isa::Scalar::Int(*v));
        }
        for (i, v) in [1, 0, 1, 0, 1, 0].iter().enumerate() {
            bufs[1].set(i, unit_isa::Scalar::Int(*v));
        }
        run_reference(&op, &mut bufs).unwrap();
        assert_eq!(bufs[2].to_ints(), vec![4, 2, 10, 5]);
    }

    #[test]
    fn reference_f16_matmul_accumulates_in_f32() {
        let op = matmul_f16(4, 4, 8);
        let mut bufs = alloc_op_buffers(&op);
        random_fill(&mut bufs, 9);
        run_reference(&op, &mut bufs).unwrap();
        // Oracle computed in f32 from the f16-rounded inputs.
        let a = bufs[0].to_floats();
        let b = bufs[1].to_floats();
        for i in 0..4 {
            for j in 0..4 {
                let mut acc = 0f32;
                for k in 0..8 {
                    acc += a[i * 8 + k] as f32 * b[k * 4 + j] as f32;
                }
                let got = bufs[2].to_floats()[i * 4 + j];
                assert!((got - acc as f64).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn reference_output_is_reproducible() {
        let op = matmul_u8i8(3, 5, 7);
        let bufs = alloc_op_buffers(&op);
        let o1 = reference_output(&op, &bufs, 123).unwrap();
        let o2 = reference_output(&op, &bufs, 123).unwrap();
        assert_eq!(o1, o2);
        let o3 = reference_output(&op, &bufs, 124).unwrap();
        assert_ne!(o1, o3);
    }
}
