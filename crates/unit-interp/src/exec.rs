//! Statement-tree interpretation.
//!
//! Loop annotations do not change semantics (a parallel or GPU-bound loop is
//! interpreted sequentially — the schedule validity rules in
//! [`unit_tir::schedule`] guarantee the result is identical), so one
//! interpreter covers CPU and GPU kernels.

use std::fmt;

use unit_dsl::{DType, TensorId};
use unit_isa::{registry, Scalar, TypedBuf};
use unit_tir::{IdxExpr, IntrinStmt, OperandSpec, Stmt, TExpr, TirFunc, VarId};

/// Interpretation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Buffer vector does not match the function's declarations.
    BufferCount {
        /// One buffer per declaration expected.
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// A buffer's shape or dtype mismatches its declaration.
    BufferDecl(String),
    /// An intrinsic call references an unknown instruction.
    UnknownIntrinsic(String),
    /// The instruction emulation rejected its operands.
    Emulation(String),
    /// An access escaped its buffer (would be UB in generated code).
    OutOfBounds {
        /// Offending buffer index.
        buffer: u32,
        /// Flat element index.
        index: i64,
        /// Buffer length.
        len: usize,
    },
    /// A Load/Store supplies a different number of indices than the
    /// buffer has dimensions. Truncating would silently compute a wrong
    /// address (the old behaviour), so both the interpreter and the tape
    /// compiler reject it.
    IndexArity {
        /// Offending buffer index.
        buffer: u32,
        /// The buffer's rank (one index expected per dimension).
        expected: usize,
        /// Indices supplied by the access.
        got: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BufferCount { expected, got } => {
                write!(f, "expected {expected} buffers, got {got}")
            }
            ExecError::BufferDecl(m) => write!(f, "buffer mismatch: {m}"),
            ExecError::UnknownIntrinsic(n) => write!(f, "unknown intrinsic {n}"),
            ExecError::Emulation(m) => write!(f, "emulation failed: {m}"),
            ExecError::OutOfBounds { buffer, index, len } => {
                write!(f, "access of b{buffer}[{index}] escapes length {len}")
            }
            ExecError::IndexArity {
                buffer,
                expected,
                got,
            } => {
                write!(
                    f,
                    "access of b{buffer} supplies {got} indices for rank {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

struct Interp<'a> {
    func: &'a TirFunc,
    bufs: &'a mut [TypedBuf],
    env: Vec<i64>,
}

/// Run a TIR function on the given buffers (`bufs[i]` binds buffer `i`).
///
/// # Errors
///
/// See [`ExecError`]. Out-of-bounds accesses are reported, never silently
/// wrapped, because they would be undefined behaviour in generated code.
pub fn run(func: &TirFunc, bufs: &mut [TypedBuf]) -> Result<(), ExecError> {
    if bufs.len() != func.buffers.len() {
        return Err(ExecError::BufferCount {
            expected: func.buffers.len(),
            got: bufs.len(),
        });
    }
    for (decl, buf) in func.buffers.iter().zip(bufs.iter()) {
        if decl.len() != buf.len() || decl.dtype != buf.dtype {
            return Err(ExecError::BufferDecl(format!(
                "buffer {} expects {} x {}, got {} x {}",
                decl.name,
                decl.len(),
                decl.dtype,
                buf.len(),
                buf.dtype
            )));
        }
    }
    let mut interp = Interp {
        func,
        bufs,
        env: vec![0; func.vars.len()],
    };
    interp.stmt(&func.body)?;
    // Fused epilogue region: the oracle applies it reference-style, one
    // pass per instruction (the tape executes the same region inside its
    // dispatch loop — see `tape`).
    if let Some(epi) = &func.epilogue {
        crate::epilogue::run_epilogue(epi, func.output, interp.bufs)?;
    }
    Ok(())
}

impl Interp<'_> {
    fn idx(&self, e: &IdxExpr) -> i64 {
        e.eval(&|v: VarId| self.env[v.0 as usize])
    }

    fn flat(&self, buffer: unit_tir::BufId, indices: &[IdxExpr]) -> Result<usize, ExecError> {
        let decl = self.func.buffer(buffer);
        let strides = decl.strides();
        if indices.len() != strides.len() {
            return Err(ExecError::IndexArity {
                buffer: buffer.0,
                expected: strides.len(),
                got: indices.len(),
            });
        }
        let mut flat = 0i64;
        for (ix, s) in indices.iter().zip(&strides) {
            flat += self.idx(ix) * s;
        }
        let len = self.bufs[buffer.0 as usize].len();
        if flat < 0 || flat as usize >= len {
            return Err(ExecError::OutOfBounds {
                buffer: buffer.0,
                index: flat,
                len,
            });
        }
        Ok(flat as usize)
    }

    fn expr(&self, e: &TExpr) -> Result<Scalar, ExecError> {
        match e {
            TExpr::Int(v, dt) => Ok(Scalar::Int(*v).wrap(*dt)),
            TExpr::Float(bits, dt) => Ok(Scalar::Float(f64::from_bits(*bits)).wrap(*dt)),
            TExpr::Load { buffer, indices } => {
                let at = self.flat(*buffer, indices)?;
                Ok(self.bufs[buffer.0 as usize].get(at))
            }
            TExpr::Cast(dt, inner) => {
                let from = inner.dtype(&|b| self.func.buffer(b).dtype);
                Ok(self.expr(inner)?.cast(from, *dt))
            }
            TExpr::Bin(op, lhs, rhs) => {
                let dt = lhs.dtype(&|b| self.func.buffer(b).dtype);
                let a = self.expr(lhs)?;
                let b = self.expr(rhs)?;
                Ok(Scalar::binop(*op, a, b, dt))
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), ExecError> {
        match s {
            Stmt::For(fs) => {
                for i in 0..fs.extent {
                    self.env[fs.var.0 as usize] = i;
                    self.stmt(&fs.body)?;
                }
                Ok(())
            }
            Stmt::Seq(items) => {
                for st in items {
                    self.stmt(st)?;
                }
                Ok(())
            }
            Stmt::Store(st) => {
                let value = self.expr(&st.value)?;
                let at = self.flat(st.buffer, &st.indices)?;
                self.bufs[st.buffer.0 as usize].set(at, value);
                Ok(())
            }
            Stmt::IfLikely { guards, body } => {
                for g in guards {
                    if self.idx(&g.index) >= g.bound {
                        return Ok(());
                    }
                }
                self.stmt(body)
            }
            Stmt::Intrin(is) => self.intrin(is),
            Stmt::Sync | Stmt::Nop => Ok(()),
        }
    }

    /// Gather a register from memory according to an operand spec. Lane
    /// enumeration is shared with the tape compiler
    /// ([`OperandSpec::for_each_lane`]) — the interpreter walks it per
    /// call, the tape precomputes it once.
    fn gather(&self, spec: &OperandSpec, dtype: DType) -> Result<TypedBuf, ExecError> {
        let mut reg = TypedBuf::zeros(dtype, spec.reg_len);
        let base = self.idx(&spec.base);
        let buf = &self.bufs[spec.buffer.0 as usize];
        let len = buf.len();
        let mut oob = None;
        spec.for_each_lane(|reg_at, mem_off| {
            if oob.is_some() {
                return;
            }
            let at = base + mem_off;
            if at < 0 || at as usize >= len {
                oob = Some(at);
                return;
            }
            reg.set(reg_at as usize, buf.get(at as usize));
        });
        match oob {
            Some(index) => Err(ExecError::OutOfBounds {
                buffer: spec.buffer.0,
                index,
                len,
            }),
            None => Ok(reg),
        }
    }

    /// Scatter a register back to memory.
    fn scatter(&mut self, spec: &OperandSpec, reg: &TypedBuf) -> Result<(), ExecError> {
        let base = self.idx(&spec.base);
        let len = self.bufs[spec.buffer.0 as usize].len();
        let mut writes = Vec::with_capacity(spec.reg_len);
        let mut oob = None;
        spec.for_each_lane(|reg_at, mem_off| {
            if oob.is_some() {
                return;
            }
            let at = base + mem_off;
            if at < 0 || at as usize >= len {
                oob = Some(at);
                return;
            }
            writes.push((at as usize, reg.get(reg_at as usize)));
        });
        if let Some(index) = oob {
            return Err(ExecError::OutOfBounds {
                buffer: spec.buffer.0,
                index,
                len,
            });
        }
        let buf = &mut self.bufs[spec.buffer.0 as usize];
        for (at, v) in writes {
            buf.set(at, v);
        }
        Ok(())
    }

    fn intrin(&mut self, is: &IntrinStmt) -> Result<(), ExecError> {
        let intrin = registry::by_name(&is.intrinsic)
            .ok_or_else(|| ExecError::UnknownIntrinsic(is.intrinsic.clone()))?;
        let sem = &intrin.semantics;
        let mut regs: Vec<TypedBuf> = sem
            .tensors
            .iter()
            .map(|t| TypedBuf::zeros(t.dtype, t.len()))
            .collect();

        // Data operands, positionally paired with the semantics' loads.
        let inst_loads = sem.update.loads();
        if inst_loads.len() != is.srcs.len() {
            return Err(ExecError::Emulation(format!(
                "intrinsic {} expects {} data operands, got {}",
                is.intrinsic,
                inst_loads.len(),
                is.srcs.len()
            )));
        }
        for (load, spec) in inst_loads.iter().zip(&is.srcs) {
            let dtype = sem.tensor(load.tensor).dtype;
            regs[load.tensor.0 as usize] = self.gather(spec, dtype)?;
        }
        // Accumulator operand.
        if let Some(acc_reg) = intrin.accumulator_operand() {
            let spec = is.acc.as_ref().ok_or_else(|| {
                ExecError::Emulation(format!(
                    "intrinsic {} requires an accumulator operand",
                    is.intrinsic
                ))
            })?;
            let dtype = sem.tensor(acc_reg).dtype;
            regs[acc_reg.0 as usize] = self.gather(spec, dtype)?;
        } else {
            // In-place accumulation: seed the destination register.
            let out: TensorId = sem.output;
            let dtype = sem.tensor(out).dtype;
            regs[out.0 as usize] = self.gather(&is.dst, dtype)?;
        }

        unit_isa::execute(&intrin, &mut regs).map_err(|e| ExecError::Emulation(e.to_string()))?;

        let out_reg = regs[sem.output.0 as usize].clone();
        self.scatter(&is.dst, &out_reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::{alloc_buffers, random_fill};
    use crate::reference::run_reference;
    use unit_dsl::builder::{conv2d_hwc, matmul_u8i8};
    use unit_tir::{lower::lower, schedule::Schedule};

    #[test]
    fn default_lowering_matches_reference() {
        let op = matmul_u8i8(6, 10, 24);
        let func = lower(&Schedule::new(&op), "mm").unwrap();
        let mut bufs = alloc_buffers(&func);
        random_fill(&mut bufs, 11);
        let mut reference = bufs.clone();
        run(&func, &mut bufs).unwrap();
        run_reference(&op, &mut reference).unwrap();
        assert_eq!(bufs[2], reference[2]);
    }

    #[test]
    fn split_reorder_fuse_preserve_semantics() {
        let op = conv2d_hwc(8, 8, 8, 16, 3, 3);
        let mut s = Schedule::new(&op);
        let ls = s.leaves(); // x y k r s rc
        let (ko, ki) = s.split(ls[2], 4).unwrap();
        let f = s.fuse(ls[0], ls[1]).unwrap(); // fuse x,y
        s.reorder(&[ko, f]).unwrap();
        s.annotate(ki, unit_tir::LoopKind::Unrolled).unwrap();
        let func = lower(&s, "conv_sched").unwrap();
        let mut bufs = alloc_buffers(&func);
        random_fill(&mut bufs, 3);
        let mut reference = bufs.clone();
        run(&func, &mut bufs).unwrap();
        run_reference(&op, &mut reference).unwrap();
        assert_eq!(bufs[2], reference[2]);
    }

    #[test]
    fn imperfect_tiling_matches_reference() {
        // 30 is not a multiple of 8: the residue guard must fire.
        let op = matmul_u8i8(30, 10, 12);
        let mut s = Schedule::new(&op);
        let ls = s.leaves();
        let (_, _) = s.split(ls[0], 8).unwrap();
        let func = lower(&s, "mm_resid").unwrap();
        let mut bufs = alloc_buffers(&func);
        random_fill(&mut bufs, 5);
        let mut reference = bufs.clone();
        run(&func, &mut bufs).unwrap();
        run_reference(&op, &mut reference).unwrap();
        assert_eq!(bufs[2], reference[2]);
    }

    #[test]
    fn index_arity_mismatch_is_a_typed_error() {
        // Regression: a Load/Store with fewer indices than the buffer's
        // rank used to zip against the strides and silently truncate,
        // computing a wrong address instead of erroring.
        use unit_dsl::DType;
        use unit_tir::{BufId, BufferDecl, BufferScope, Stmt, StoreStmt, TirFunc};
        let buf2d = BufferDecl {
            id: BufId(0),
            name: "out".into(),
            shape: vec![4, 4],
            dtype: DType::I32,
            scope: BufferScope::Global,
        };
        let func = TirFunc {
            name: "arity".into(),
            buffers: vec![buf2d],
            vars: vec![],
            output: BufId(0),
            body: Stmt::Store(StoreStmt {
                buffer: BufId(0),
                indices: vec![IdxExpr::Const(1)], // rank 2, one index
                value: TExpr::Int(7, DType::I32),
            }),
            epilogue: None,
        };
        let mut bufs = alloc_buffers(&func);
        assert!(matches!(
            run(&func, &mut bufs),
            Err(ExecError::IndexArity {
                buffer: 0,
                expected: 2,
                got: 1
            })
        ));
        // The tape compiler rejects the same function at compile time.
        assert!(matches!(
            crate::tape::Tape::compile(&func),
            Err(ExecError::IndexArity {
                buffer: 0,
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn buffer_validation_is_enforced() {
        let op = matmul_u8i8(4, 4, 8);
        let func = lower(&Schedule::new(&op), "mm").unwrap();
        let mut bufs = alloc_buffers(&func);
        bufs.pop();
        assert!(matches!(
            run(&func, &mut bufs),
            Err(ExecError::BufferCount { .. })
        ));
    }
}
