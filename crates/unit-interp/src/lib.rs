//! Tensor-IR interpreter: UNIT's functional-correctness substrate.
//!
//! The paper compiles through LLVM and runs on real VNNI / Tensor Core / DOT
//! hardware. This reproduction instead *interprets* the lowered tensor IR,
//! dispatching [`unit_tir::IntrinStmt`]s to the bit-accurate instruction
//! emulation in [`unit_isa`]. Every transformation in the pipeline is
//! validated by the equation
//!
//! ```text
//! interpret(rewritten kernel)  ==  reference(ComputeOp)
//! ```
//!
//! on random inputs, where the reference executor evaluates the op's DSL
//! semantics directly.
//!
//! Two executors share these semantics: the statement-tree walker
//! ([`exec::run`], the differential oracle) and the compiled instruction
//! tape ([`tape::Tape`], the serving fast path — lower once, replay
//! allocation-free). They are validated against each other bit-for-bit.
//!
//! # Example
//!
//! ```
//! use unit_dsl::builder::matmul_u8i8;
//! use unit_tir::{schedule::Schedule, lower::lower};
//! use unit_interp::{alloc_buffers, random_fill, run, reference_output};
//!
//! let op = matmul_u8i8(4, 8, 16);
//! let func = lower(&Schedule::new(&op), "mm").unwrap();
//! let mut bufs = alloc_buffers(&func);
//! random_fill(&mut bufs, 42);
//! run(&func, &mut bufs).unwrap();
//! let expect = reference_output(&op, &bufs, 42).unwrap();
//! assert_eq!(bufs[2], expect);
//! ```

pub mod buffers;
pub mod epilogue;
pub mod exec;
pub mod reference;
pub mod tape;

pub use buffers::{alloc_buffers, alloc_op_buffers, random_fill};
pub use epilogue::{cell_to_i64, i64_to_cell, run_epilogue};
pub use exec::{run, ExecError};
pub use reference::{reference_output, run_reference};
pub use tape::{Tape, TapeProfile, TapeScratch, TapeStats};
