//! Differential tests for the parallel compilation engine, the
//! operator-generic workload model, and the open target model.
//!
//! Two properties are enforced over a grid of matmul/conv shapes on the
//! registered targets (x86 VNNI, ARM DOT, ARMv8.6 i8mm `smmla`, NVIDIA
//! Tensor Core — enumerated from the registry, not hard-coded):
//!
//! 1. **Numerical identity**: every tuning stage (`ParallelOnly`,
//!    `ParallelUnroll`, `Tuned`) emits a kernel whose interpreter result
//!    is bit-identical to `run_reference`.
//! 2. **Search determinism**: the parallel candidate search picks exactly
//!    the same `(par, unroll)` pair — same chosen description, same
//!    estimate, same log — as the serial search, at every worker count.
//!    This is the guard that keeps the candidates-to-optimum statistic of
//!    Section VI-B meaningful when tuning runs multi-threaded.
//!
//! On top of the hand-picked grids, an **op × target matrix**
//! (`op_spec_matrix_*` below) replays every `OpSpec` variant — dense 2D
//! conv, depthwise, grouped conv, 3D conv, GEMM, batched matmul — through
//! the exact lowering the graph compiler uses (`op_for_target`) on every
//! registered target, checking each compiled (or SIMD-fallback) kernel
//! bit-identical against the reference interpreter and the parallel tuner
//! against the serial one. The i8mm target rides the matrix purely as
//! registry data: nothing in this file (or in the pipeline) names it
//! except the one assertion that its known non-tiling case is the *only*
//! combination allowed to fall back.

use unit::dsl::builder::{matmul_f16, matmul_u8i8};
use unit::dsl::{ComputeOp, DType};
use unit::interp::{alloc_buffers, random_fill, run, run_reference};
use unit::pipeline::{Target, Tensorizer, TuningConfig};
use unit_core::inspector::inspect;
use unit_core::tuner::{
    tune_cpu, tune_cpu_with_workers, tune_gpu, tune_gpu_with_workers, CpuTuneMode, GpuTuneMode,
};
use unit_graph::compile::simd_fallback_func;
use unit_graph::layout::{blocked_conv2d, blocked_dense, blocked_gemm, op_for_target};
use unit_graph::{ConvSpec, OpSpec};
use unit_isa::registry;

/// The CPU tuning stages of Figure 10, in ablation order.
fn cpu_stages() -> Vec<CpuTuneMode> {
    vec![
        CpuTuneMode::ParallelOnly,
        CpuTuneMode::ParallelUnroll,
        CpuTuneMode::Tuned { max_pairs: 6 },
    ]
}

/// Compile `op` for `target` under `cpu_mode` and assert the interpreter
/// result is bit-identical to the reference executor.
fn assert_stage_matches_reference(
    op: &ComputeOp,
    target: Target,
    cpu_mode: CpuTuneMode,
    seed: u64,
) {
    let kernel = Tensorizer::new(target)
        .with_tuning(TuningConfig {
            cpu: cpu_mode,
            gpu: GpuTuneMode::Tuned,
        })
        .compile(op)
        .unwrap_or_else(|e| panic!("{} must compile under {cpu_mode:?}: {e}", op.name));
    let mut bufs = alloc_buffers(&kernel.func);
    random_fill(&mut bufs, seed);
    let mut reference = bufs.clone();
    run(&kernel.func, &mut bufs).expect("interpretation succeeds");
    run_reference(op, &mut reference).expect("reference succeeds");
    assert_eq!(
        bufs[op.output.0 as usize], reference[op.output.0 as usize],
        "{} under {cpu_mode:?} diverges from the reference",
        op.name
    );
}

/// The x86 differential grid: quantized matmuls plus blocked convs.
fn x86_grid() -> Vec<ComputeOp> {
    let mut ops = vec![
        matmul_u8i8(16, 16, 16),
        matmul_u8i8(24, 32, 64),
        matmul_u8i8(8, 16, 32),
    ];
    for spec in [
        ConvSpec::new_2d(8, 10, 16, 3, 1, 1),
        ConvSpec::new_2d(16, 8, 32, 1, 1, 0),
    ] {
        ops.push(blocked_conv2d(&spec, 16, 4, DType::U8, DType::I8));
    }
    ops
}

/// A differential grid in a CPU target's own blocking convention, derived
/// from the descriptor (this is what makes the grid portable to targets
/// the grid author never saw).
fn blocked_grid_for(target: &Target) -> Vec<ComputeOp> {
    let (lanes, rwidth, ddt, wdt) = target.desc.blocking();
    let mut ops = Vec::new();
    for spec in [
        ConvSpec::new_2d(8, 8, 16, 3, 1, 1),
        ConvSpec::new_2d(12, 6, 8, 1, 1, 0),
    ] {
        ops.push(blocked_conv2d(&spec, lanes, rwidth, ddt, wdt));
    }
    // A fully connected layer. `blocked_dense` has no row axis, so
    // matrix-tile instructions like smmla (whose 2x2 tile needs a second
    // data-parallel axis) cannot map it — those targets exercise the
    // equivalent row-tile GEMM instead, exactly as `dense_for_target`
    // style dispatch would.
    let dense = blocked_dense(32, 12, lanes, rwidth, ddt, wdt);
    if Tensorizer::new(target.clone()).inspect(&dense).is_ok() {
        ops.push(dense);
    } else {
        ops.push(blocked_gemm(lanes, 12, 32, 1, lanes, rwidth, ddt, wdt));
    }
    ops
}

#[test]
fn every_x86_stage_matches_the_reference() {
    for (i, op) in x86_grid().iter().enumerate() {
        for (j, mode) in cpu_stages().into_iter().enumerate() {
            assert_stage_matches_reference(
                op,
                Target::x86_avx512_vnni(),
                mode,
                4000 + (i * 10 + j) as u64,
            );
        }
    }
}

#[test]
fn every_arm_stage_matches_the_reference() {
    for (i, op) in blocked_grid_for(&Target::arm_neon_dot()).iter().enumerate() {
        for (j, mode) in cpu_stages().into_iter().enumerate() {
            assert_stage_matches_reference(
                op,
                Target::arm_neon_dot(),
                mode,
                5000 + (i * 10 + j) as u64,
            );
        }
    }
}

#[test]
fn every_smmla_stage_matches_the_reference() {
    // The fourth built-in target, exercised through the same generic
    // helpers as the paper's three — nothing here is smmla-specific
    // except the target lookup.
    let target = Target::by_id("arm-i8mm-smmla").expect("built-in target");
    for (i, op) in blocked_grid_for(&target).iter().enumerate() {
        for (j, mode) in cpu_stages().into_iter().enumerate() {
            assert_stage_matches_reference(op, target.clone(), mode, 5500 + (i * 10 + j) as u64);
        }
    }
}

#[test]
fn gpu_kernels_match_the_reference() {
    for (i, op) in [matmul_f16(32, 32, 32), matmul_f16(48, 64, 128)]
        .iter()
        .enumerate()
    {
        for gpu in [GpuTuneMode::Generic, GpuTuneMode::Tuned] {
            let kernel = Tensorizer::new(Target::nvidia_tensor_core())
                .with_tuning(TuningConfig {
                    cpu: CpuTuneMode::ParallelUnroll,
                    gpu,
                })
                .compile(op)
                .expect("wmma matmul compiles");
            let mut bufs = alloc_buffers(&kernel.func);
            random_fill(&mut bufs, 6000 + i as u64);
            let mut reference = bufs.clone();
            run(&kernel.func, &mut bufs).expect("interprets");
            run_reference(op, &mut reference).expect("reference");
            assert_eq!(
                bufs[op.output.0 as usize], reference[op.output.0 as usize],
                "{} under {gpu:?} diverges",
                op.name
            );
        }
    }
}

/// One representative per `OpSpec` variant, sized for debug-mode
/// interpretation. This is the row axis of the differential matrix; the
/// column axis is every target in the registry.
fn op_spec_matrix() -> Vec<OpSpec> {
    vec![
        OpSpec::conv2d(8, 6, 16, 3, 1, 1),
        OpSpec::depthwise(8, 6, 3, 1, 1),
        OpSpec::grouped(8, 6, 8, 3, 1, 1, 2),
        // groups == c with a 2x depth multiplier: grouped, NOT depthwise.
        OpSpec::grouped(4, 5, 8, 3, 1, 1, 4),
        OpSpec::conv3d(4, 4, 3, 8, 3, 1, 1),
        OpSpec::gemm(6, 8, 12),
        OpSpec::batched_gemm(2, 4, 8, 12),
    ]
}

/// Every target in the registry — the matrix column axis is *data*. The
/// four built-ins are asserted present so a registry regression cannot
/// silently shrink the matrix.
fn all_targets() -> Vec<Target> {
    let targets: Vec<Target> = registry::targets()
        .into_iter()
        .map(Target::from_desc)
        .collect();
    for id in [
        "x86-avx512-vnni",
        "arm-neon-dot",
        "arm-i8mm-smmla",
        "nvidia-tensor-core",
    ] {
        assert!(
            targets.iter().any(|t| t.desc.id == id),
            "built-in target {id} missing from the registry"
        );
    }
    targets
}

/// The only (target, workload) combination allowed to miss tensorization:
/// the 2-lane smmla tile cannot map onto the odd 5x5 spatial extents of
/// the depth-multiplier grouped spec (no data-parallel axis tiles by 2),
/// so that one rides the SIMD fallback — still bit-identical.
fn fallback_is_expected(target: &Target, spec: &OpSpec) -> bool {
    target.desc.id == "arm-i8mm-smmla"
        && matches!(spec, OpSpec::GroupedConv { conv, .. } if conv.ohw() % target.desc.lanes != 0)
}

/// Run a compiled kernel function against the reference executor of the
/// op it was lowered from, on deterministic random inputs.
fn assert_func_matches_reference(func: &unit_tir::TirFunc, op: &ComputeOp, seed: u64, what: &str) {
    let mut bufs = alloc_buffers(func);
    random_fill(&mut bufs, seed);
    let mut reference = bufs.clone();
    run(func, &mut bufs).expect("interpretation succeeds");
    run_reference(op, &mut reference).expect("reference succeeds");
    assert_eq!(
        bufs[op.output.0 as usize], reference[op.output.0 as usize],
        "{what} diverges from the reference"
    );
}

/// The matrix: every `OpSpec` variant × every registered target, through
/// the exact graph-compiler lowering, bit-identical against the reference.
///
/// Tensorizable workloads are checked under every tuning stage (serial
/// and 8-worker parallel tuning must agree bit-for-bit); depthwise
/// workloads — rejected by the Inspector on every target — are checked
/// through the SIMD fallback schedule on CPU-style targets and assert the
/// rejection on GPU-style ones (the CUDA-core fallback is a cost model,
/// not a kernel).
#[test]
fn op_spec_matrix_matches_reference_on_every_target() {
    for (i, spec) in op_spec_matrix().iter().enumerate() {
        for (j, target) in all_targets().iter().enumerate() {
            let seed = 7000 + (i * 10 + j) as u64;
            let (op, hint) = op_for_target(spec, &target.desc);
            let what = format!("{} on {}", op.name, target.desc.id);
            if spec.is_depthwise() {
                if target.desc.is_gpu() {
                    let err = Tensorizer::new(target.clone()).inspect(&op);
                    assert!(err.is_err(), "{what}: depthwise must be rejected");
                } else {
                    let func = simd_fallback_func(&op);
                    assert_func_matches_reference(&func, &op, seed, &what);
                }
                continue;
            }
            if Tensorizer::new(target.clone()).inspect(&op).is_err() {
                assert!(fallback_is_expected(target, spec), "{what} must tensorize");
                let func = simd_fallback_func(&op);
                assert_func_matches_reference(&func, &op, seed, &what);
                continue;
            }
            let modes: Vec<TuningConfig> = if target.desc.is_gpu() {
                [GpuTuneMode::Generic, GpuTuneMode::Tuned]
                    .into_iter()
                    .map(|gpu| TuningConfig {
                        cpu: CpuTuneMode::ParallelUnroll,
                        gpu,
                    })
                    .collect()
            } else {
                cpu_stages()
                    .into_iter()
                    .map(|cpu| TuningConfig {
                        cpu,
                        gpu: GpuTuneMode::Tuned,
                    })
                    .collect()
            };
            for tuning in modes {
                let kernel = Tensorizer::new(target.clone())
                    .with_tuning(tuning)
                    .compile_with_hint(&op, hint)
                    .unwrap_or_else(|e| panic!("{what} must compile: {e}"));
                assert_func_matches_reference(&kernel.func, &op, seed, &what);
            }
        }
    }
}

/// The determinism half of the matrix: on every CPU-style target, the
/// parallel tuner must pick exactly the serial tuner's schedule for every
/// tensorizable `OpSpec` variant.
#[test]
fn op_spec_matrix_parallel_tuning_agrees_with_serial() {
    for target in all_targets().iter().filter(|t| !t.desc.is_gpu()) {
        let machine = target.cpu.clone().expect("CPU-style target");
        for spec in op_spec_matrix() {
            if spec.is_depthwise() {
                continue; // no tuner runs on the fallback path
            }
            let (op, _) = op_for_target(&spec, &target.desc);
            let t = Tensorizer::new(target.clone());
            let (intrin, m) = match t.inspect(&op) {
                Ok(found) => found,
                Err(e) => {
                    assert!(
                        fallback_is_expected(target, &spec),
                        "{} must tensorize on {}: {e}",
                        op.name,
                        target.desc.id
                    );
                    continue;
                }
            };
            let mode = CpuTuneMode::Tuned { max_pairs: 6 };
            let serial = tune_cpu(&op, &m, &intrin, &machine, mode).expect("serial tunes");
            for workers in [2, 8] {
                let par = tune_cpu_with_workers(&op, &m, &intrin, &machine, mode, workers)
                    .expect("parallel tunes");
                assert_eq!(
                    par.chosen, serial.chosen,
                    "{} on {}: {workers} workers chose a different pair",
                    op.name, target.desc.id
                );
                assert_eq!(par.estimate.cycles, serial.estimate.cycles, "{}", op.name);
                assert_eq!(par.log, serial.log, "{}: log order changed", op.name);
            }
        }
    }
}

/// GPU half of the determinism matrix: the parallel GPU tuner agrees with
/// the serial one on the GEMM-family workloads every GPU-style target
/// compiles.
#[test]
fn op_spec_matrix_parallel_gpu_tuning_agrees_with_serial() {
    for target in all_targets().iter().filter(|t| t.desc.is_gpu()) {
        let machine = target.gpu.clone().expect("GPU-style target");
        for spec in op_spec_matrix() {
            if spec.is_depthwise() {
                continue;
            }
            let (op, hint) = op_for_target(&spec, &target.desc);
            let t = Tensorizer::new(target.clone());
            let (intrin, m) = t
                .inspect(&op)
                .unwrap_or_else(|e| panic!("{} must tensorize: {e}", op.name));
            let serial = tune_gpu(&op, &m, &intrin, &machine, GpuTuneMode::Tuned, hint);
            for workers in [2, 8] {
                let par = tune_gpu_with_workers(
                    &op,
                    &m,
                    &intrin,
                    &machine,
                    GpuTuneMode::Tuned,
                    hint,
                    workers,
                );
                assert_eq!(par.chosen, serial.chosen, "{}", op.name);
                assert_eq!(par.estimate.cycles, serial.estimate.cycles, "{}", op.name);
                assert_eq!(par.log, serial.log, "{}", op.name);
            }
        }
    }
}

/// Whole-model differential check for the GEMM-built transformer: the
/// parallel compilation path must reproduce the serial report bit-for-bit
/// on every registered target (the conv-model twin lives below).
#[test]
fn transformer_parallel_compilation_is_deterministic_on_every_target() {
    use unit_graph::models::transformer_tiny;
    let g = transformer_tiny();
    let tuning = TuningConfig {
        cpu: CpuTuneMode::Tuned { max_pairs: 2 },
        gpu: GpuTuneMode::Tuned,
    };
    for target in all_targets() {
        let baseline = unit_graph::compile_graph(&g, target.clone(), tuning);
        for workers in [2, 8] {
            let r = unit_graph::compile_model_parallel(&g, target.clone(), tuning, workers);
            assert_eq!(
                r.total_ms, baseline.total_ms,
                "{} with {workers} workers",
                target.desc.id
            );
        }
    }
}

#[test]
fn parallel_cpu_tuning_picks_the_same_pair_as_serial() {
    for target in all_targets().iter().filter(|t| !t.desc.is_gpu()) {
        let machine = target.cpu.clone().expect("CPU-style target");
        let grid = if target.desc.id == "x86-avx512-vnni" {
            x86_grid()
        } else {
            blocked_grid_for(target)
        };
        for op in &grid {
            let t = Tensorizer::new(target.clone());
            let (intrin, m) = t.inspect(op).expect("grid ops tensorize");
            let mode = CpuTuneMode::Tuned { max_pairs: 8 };
            let serial = tune_cpu(op, &m, &intrin, &machine, mode).expect("serial tunes");
            for workers in [2, 4, 8] {
                let par = tune_cpu_with_workers(op, &m, &intrin, &machine, mode, workers)
                    .expect("parallel tunes");
                assert_eq!(
                    par.chosen, serial.chosen,
                    "{} on {}: {workers} workers chose a different pair",
                    op.name, target.desc.id
                );
                assert_eq!(par.estimate.cycles, serial.estimate.cycles, "{}", op.name);
                assert_eq!(par.log, serial.log, "{}: log order changed", op.name);
            }
        }
    }
}

#[test]
fn parallel_gpu_tuning_picks_the_same_config_as_serial() {
    let op = matmul_f16(48, 512, 2048);
    let intrin = registry::by_name("llvm.nvvm.wmma.m16n16k16.mma.row.row.f32.f32").unwrap();
    let m = inspect(&intrin, &op).unwrap();
    let machine = Target::nvidia_tensor_core().gpu.expect("GPU target");
    let serial = tune_gpu(&op, &m, &intrin, &machine, GpuTuneMode::Tuned, None);
    for workers in [2, 8] {
        let par = tune_gpu_with_workers(
            &op,
            &m,
            &intrin,
            &machine,
            GpuTuneMode::Tuned,
            None,
            workers,
        );
        assert_eq!(par.chosen, serial.chosen);
        assert_eq!(par.estimate.cycles, serial.estimate.cycles);
        assert_eq!(par.log, serial.log);
    }
}

#[test]
fn whole_model_parallel_compilation_is_deterministic_across_worker_counts() {
    use unit_graph::models::{resnet, ResnetDepth};
    let g = resnet(ResnetDepth::R18);
    let tuning = TuningConfig {
        cpu: CpuTuneMode::Tuned { max_pairs: 4 },
        gpu: GpuTuneMode::Tuned,
    };
    let baseline = unit_graph::compile_graph(&g, Target::x86_avx512_vnni(), tuning);
    for workers in [2, 8] {
        let r = unit_graph::compile_model_parallel(&g, Target::x86_avx512_vnni(), tuning, workers);
        assert_eq!(r.total_ms, baseline.total_ms, "{workers} workers");
    }
}
