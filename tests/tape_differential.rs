//! Differential validation of the compiled instruction tape against the
//! statement-tree interpreter (the oracle the serving runtime keeps
//! behind `ExecMode::Interp`).
//!
//! Two angles of attack:
//!
//! * **Random schedules** (property tests): arbitrary
//!   split/fuse/reorder/annotate transformations of a matmul — including
//!   non-dividing split factors, whose residue guards must survive onto
//!   the tape — compiled to a [`Tape`] and checked bit-for-bit against
//!   [`run`] on *every* buffer, not just the output (a tape that
//!   scribbles on an input would still "match the output").
//! * **The op × target matrix**: every `OpSpec` family through the exact
//!   graph-compiler lowering ([`compile_workload_full`]) on every
//!   registered target, tape vs. tree walker, all buffers bit-identical.

use proptest::prelude::*;
use unit::dsl::builder::matmul_u8i8;
use unit::interp::{alloc_buffers, random_fill, run, Tape};
use unit::pipeline::{Target, TuningConfig};
use unit_core::tuner::{CpuTuneMode, GpuTuneMode};
use unit_graph::compile::UnitProvider;
use unit_graph::{CacheWorkload, OpSpec};
use unit_isa::registry;
use unit_isa::TypedBuf;
use unit_tir::{lower::lower, LoopKind, Schedule, TirFunc};

/// Run `func` through both executors on identical random inputs and
/// assert every buffer — inputs, output, scratch — is bit-identical.
fn assert_tape_matches_interpreter(func: &TirFunc, seed: u64, what: &str) {
    let mut via_tree = alloc_buffers(func);
    random_fill(&mut via_tree, seed);
    let mut via_tape = via_tree.clone();

    run(func, &mut via_tree).unwrap_or_else(|e| panic!("{what}: interpreter failed: {e}"));
    let tape = Tape::compile(func).unwrap_or_else(|e| panic!("{what}: tape compile failed: {e}"));
    tape.run_fresh(&mut via_tape)
        .unwrap_or_else(|e| panic!("{what}: tape run failed: {e}"));

    assert_buffers_identical(&via_tree, &via_tape, what);
}

fn assert_buffers_identical(tree: &[TypedBuf], tape: &[TypedBuf], what: &str) {
    assert_eq!(tree.len(), tape.len(), "{what}: buffer count diverged");
    for (i, (a, b)) in tree.iter().zip(tape).enumerate() {
        assert_eq!(a, b, "{what}: buffer {i} diverged between tape and tree");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random split/fuse/reorder/annotate schedules — factors chosen so
    /// most draws tile imperfectly (residue guards land on the tape) —
    /// never make the tape diverge from the tree walker.
    #[test]
    fn random_schedules_run_identically_on_tape_and_tree(
        split_axis in 0usize..3,
        factor in prop::sample::select(vec![2i64, 3, 4, 5, 7]),
        swap in any::<bool>(),
        fuse_first in any::<bool>(),
        kind in prop::sample::select(vec![
            LoopKind::Serial, LoopKind::Parallel, LoopKind::Unrolled,
        ]),
        seed in 0u64..1000,
    ) {
        // 12 x 10 x 21: no factor above divides every axis, so residue
        // guards appear on most draws.
        let op = matmul_u8i8(12, 10, 21);
        let mut s = Schedule::new(&op);
        if fuse_first {
            let leaves = s.leaves();
            s.fuse(leaves[0], leaves[1]).expect("fuse adjacent leaves");
        }
        let leaves = s.leaves();
        let target = leaves[split_axis % leaves.len()];
        let (o, i) = s.split(target, factor).expect("leaf split");
        if swap {
            s.reorder(&[i, o]).expect("reorder");
        }
        // Annotation legality depends on the drawn axis (reduction axes
        // reject `Parallel`); an illegal draw just stays `Serial`.
        let _ = s.annotate(o, kind);
        let func = lower(&s, "mm_tape_random").expect("lowers");
        assert_tape_matches_interpreter(&func, seed, "random schedule");
    }

    /// Imperfect tilings specifically: splitting every axis by a
    /// non-dividing factor stacks guards; the tape must keep exactly the
    /// checks the bounds analysis cannot discharge and still agree.
    #[test]
    fn imperfect_tilings_run_identically_on_tape_and_tree(
        f0 in prop::sample::select(vec![5i64, 7, 11]),
        f1 in prop::sample::select(vec![3i64, 7, 9]),
        f2 in prop::sample::select(vec![2i64, 5, 13]),
        seed in 0u64..1000,
    ) {
        let op = matmul_u8i8(13, 11, 17); // prime extents: nothing divides
        let mut s = Schedule::new(&op);
        for (axis, f) in s.leaves().into_iter().zip([f0, f1, f2]) {
            s.split(axis, f).expect("split");
        }
        let func = lower(&s, "mm_imperfect").expect("lowers");
        let tape = Tape::compile(&func).expect("compiles");
        prop_assert!(
            tape.stats().checked_accesses > 0 || tape.stats().ops > 0,
            "imperfect tiling should leave residue work on the tape"
        );
        assert_tape_matches_interpreter(&func, seed, "imperfect tiling");
    }
}

/// Every `OpSpec` family on every registered target, lowered exactly as
/// the serving engine lowers them. GPU-style targets reject depthwise
/// (cost model only, no kernel) — skipped there, matching
/// `differential_tuning.rs`.
#[test]
fn op_spec_matrix_runs_identically_on_tape_and_tree() {
    let specs = [
        OpSpec::conv2d(8, 6, 8, 3, 1, 1),
        OpSpec::depthwise(8, 6, 3, 1, 1),
        OpSpec::grouped(8, 6, 8, 3, 1, 1, 2),
        OpSpec::conv3d(4, 4, 3, 8, 3, 1, 1),
        OpSpec::gemm(6, 8, 12),
        OpSpec::batched_gemm(2, 4, 8, 12),
    ];
    let tuning = TuningConfig {
        cpu: CpuTuneMode::ParallelUnroll,
        gpu: GpuTuneMode::Generic,
    };
    let targets: Vec<Target> = registry::targets()
        .into_iter()
        .map(Target::from_desc)
        .collect();
    assert!(targets.len() >= 4, "registry lost its built-in targets");
    for (j, target) in targets.iter().enumerate() {
        let provider = UnitProvider::new(target.clone(), tuning);
        for (i, spec) in specs.iter().enumerate() {
            if spec.is_depthwise() && target.desc.is_gpu() {
                continue;
            }
            let what = format!("{} on {}", spec.encode(), target.desc.id);
            let compiled = provider.compile_workload_full(&CacheWorkload::Op(*spec));
            let seed = 9000 + (i * 10 + j) as u64;
            assert_tape_matches_interpreter(&compiled.func, seed, &what);
        }
    }
}

/// Dense workloads ride a different lowering path in the provider; give
/// the tape the same coverage the serving report path gets.
#[test]
fn dense_workloads_run_identically_on_tape_and_tree() {
    let tuning = TuningConfig {
        cpu: CpuTuneMode::ParallelUnroll,
        gpu: GpuTuneMode::Generic,
    };
    for (j, target) in registry::targets().into_iter().enumerate() {
        let target = Target::from_desc(target);
        let provider = UnitProvider::new(target.clone(), tuning);
        let compiled = provider.compile_workload_full(&CacheWorkload::Dense {
            in_features: 24,
            units: 10,
        });
        let what = format!("dense 24x10 on {}", target.desc.id);
        assert_tape_matches_interpreter(&compiled.func, 9900 + j as u64, &what);
    }
}
