//! Property-based tests on the pipeline's core invariants.

use proptest::prelude::*;
use unit::dsl::builder::matmul_u8i8;
use unit::dsl::DType;
use unit::interp::{alloc_buffers, random_fill, run, run_reference};
use unit::pipeline::{Target, Tensorizer, TuningConfig};
use unit_core::tuner::{CpuTuneMode, GpuTuneMode};
use unit_graph::layout::{blocked_conv2d, blocked_conv3d, blocked_gemm};
use unit_graph::{ConvSpec, OpSpec};
use unit_tir::{lower::lower, Schedule};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any matmul whose dimensions tile a VNNI encoding compiles and
    /// computes exactly the reference result, for arbitrary tuning pairs.
    #[test]
    fn tensorized_matmul_always_matches_reference(
        n in 1i64..5, m in 1i64..5, k in 1i64..5,
        par in prop::sample::select(vec![500i64, 1500, 3000, 6000]),
        unroll in prop::sample::select(vec![1i64, 2, 4, 8, 16]),
        seed in 0u64..1000,
    ) {
        let op = matmul_u8i8(n * 8, m * 8, k * 4);
        let tuning = TuningConfig {
            cpu: CpuTuneMode::Fixed { par, unroll },
            gpu: GpuTuneMode::Tuned,
        };
        let kernel = Tensorizer::new(Target::x86_avx512_vnni())
            .with_tuning(tuning)
            .compile(&op)
            .expect("tileable matmul compiles");
        let mut bufs = alloc_buffers(&kernel.func);
        random_fill(&mut bufs, seed);
        let mut reference = bufs.clone();
        run(&kernel.func, &mut bufs).expect("interprets");
        run_reference(&op, &mut reference).expect("reference");
        prop_assert_eq!(&bufs[op.output.0 as usize], &reference[op.output.0 as usize]);
    }

    /// Random schedule transformations (split/reorder/annotate) never
    /// change what a kernel computes.
    #[test]
    fn random_schedules_preserve_semantics(
        split_axis in 0usize..3,
        factor in prop::sample::select(vec![2i64, 3, 4, 5, 7]),
        swap in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let op = matmul_u8i8(12, 10, 21);
        let mut s = Schedule::new(&op);
        let leaves = s.leaves();
        let target = leaves[split_axis];
        let (o, i) = s.split(target, factor).expect("leaf split");
        if swap {
            s.reorder(&[i, o]).expect("reorder");
        }
        let func = lower(&s, "mm_random").expect("lowers");
        let mut bufs = alloc_buffers(&func);
        random_fill(&mut bufs, seed);
        let mut reference = bufs.clone();
        run(&func, &mut bufs).expect("interprets");
        run_reference(&op, &mut reference).expect("reference");
        prop_assert_eq!(&bufs[2], &reference[2]);
    }

    /// Channel padding in the blocked layout never changes the math: the
    /// padded regions are zero and contribute nothing to the dot products.
    #[test]
    fn channel_padding_is_sound(
        c in 1i64..20, k in 1i64..20, seed in 0u64..100,
    ) {
        let spec = ConvSpec::new_2d(c, 6, k, 3, 1, 1);
        let op = blocked_conv2d(&spec, 16, 4, DType::U8, DType::I8);
        let kernel = Tensorizer::new(Target::x86_avx512_vnni())
            .compile(&op)
            .expect("padded conv compiles");
        let mut bufs = alloc_buffers(&kernel.func);
        random_fill(&mut bufs, seed);
        let mut reference = bufs.clone();
        run(&kernel.func, &mut bufs).expect("interprets");
        run_reference(&op, &mut reference).expect("reference");
        prop_assert_eq!(&bufs[op.output.0 as usize], &reference[op.output.0 as usize]);
    }

    /// Any (batched) GEMM shape round-trips the full pipeline — lower →
    /// tensorize → simplify → evaluate — with the same observable store
    /// trace (the output buffer, element for element) as the scalar
    /// reference interpreter, for arbitrary `{m, n, k, batch}` and tuning
    /// pairs. Shape parameters draw from the shrinking-friendly
    /// `small_in` generator, so a failure reproduces near-minimal.
    #[test]
    fn tensorized_gemm_always_matches_reference(
        m in prop::sample::small_in(1i64..12),
        n in prop::sample::small_in(1i64..24),
        k in prop::sample::small_in(1i64..24),
        batch in prop::sample::small_in(1i64..5),
        par in prop::sample::select(vec![500i64, 3000]),
        unroll in prop::sample::select(vec![1i64, 4, 8]),
        seed in 0u64..1000,
    ) {
        let op = blocked_gemm(m, n, k, batch, 16, 4, DType::U8, DType::I8);
        let tuning = TuningConfig {
            cpu: CpuTuneMode::Fixed { par, unroll },
            gpu: GpuTuneMode::Tuned,
        };
        let kernel = Tensorizer::new(Target::x86_avx512_vnni())
            .with_tuning(tuning)
            .compile(&op)
            .expect("blocked GEMM compiles (channel padding handles any shape)");
        prop_assert!(kernel.intrinsic.name.contains("vpdpbusd"));
        let mut bufs = alloc_buffers(&kernel.func);
        random_fill(&mut bufs, seed);
        let mut reference = bufs.clone();
        run(&kernel.func, &mut bufs).expect("interprets");
        run_reference(&op, &mut reference).expect("reference");
        prop_assert_eq!(&bufs[op.output.0 as usize], &reference[op.output.0 as usize]);
    }

    /// The same GEMM property on the ARM `sdot` blocking (i8 x i8,
    /// lanes 4): the workload-generic layer has no x86-only assumptions.
    #[test]
    fn arm_gemm_always_matches_reference(
        m in prop::sample::small_in(1i64..8),
        n in prop::sample::small_in(1i64..16),
        k in prop::sample::small_in(1i64..16),
        batch in prop::sample::small_in(1i64..4),
        seed in 0u64..1000,
    ) {
        let op = blocked_gemm(m, n, k, batch, 4, 4, DType::I8, DType::I8);
        let kernel = Tensorizer::new(Target::arm_neon_dot())
            .compile(&op)
            .expect("ARM blocked GEMM compiles");
        prop_assert!(kernel.intrinsic.name.contains("dot"));
        let mut bufs = alloc_buffers(&kernel.func);
        random_fill(&mut bufs, seed);
        let mut reference = bufs.clone();
        run(&kernel.func, &mut bufs).expect("interprets");
        run_reference(&op, &mut reference).expect("reference");
        prop_assert_eq!(&bufs[op.output.0 as usize], &reference[op.output.0 as usize]);
    }

    /// The ARM dot-product path (i8 x i8 `sdot`, lanes 4, reduction width
    /// 4) computes the reference result for arbitrary channel counts and
    /// tuning pairs, including channel-padded ones.
    #[test]
    fn arm_dot_conv_always_matches_reference(
        c in 1i64..12, k in 1i64..12,
        par in prop::sample::select(vec![500i64, 3000]),
        unroll in prop::sample::select(vec![1i64, 4, 8]),
        seed in 0u64..1000,
    ) {
        let spec = ConvSpec::new_2d(c, 5, k, 3, 1, 1);
        let op = blocked_conv2d(&spec, 4, 4, DType::I8, DType::I8);
        let tuning = TuningConfig {
            cpu: CpuTuneMode::Fixed { par, unroll },
            gpu: GpuTuneMode::Tuned,
        };
        let kernel = Tensorizer::new(Target::arm_neon_dot())
            .with_tuning(tuning)
            .compile(&op)
            .expect("ARM blocked conv compiles");
        prop_assert!(kernel.intrinsic.name.contains("dot"));
        let mut bufs = alloc_buffers(&kernel.func);
        random_fill(&mut bufs, seed);
        let mut reference = bufs.clone();
        run(&kernel.func, &mut bufs).expect("interprets");
        run_reference(&op, &mut reference).expect("reference");
        prop_assert_eq!(&bufs[op.output.0 as usize], &reference[op.output.0 as usize]);
    }
}

proptest! {
    // Each 3D conv case interprets a 5D nest in debug mode; keep both
    // the draw count and the shapes small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `blocked_conv3d` tensorizes through the unchanged pipeline (the
    /// Figure 13 extensibility claim) and computes the reference result
    /// for arbitrary channel counts and depths.
    #[test]
    fn blocked_conv3d_always_matches_reference(
        c in 1i64..6, k in 1i64..8, depth in 2i64..4, seed in 0u64..1000,
    ) {
        let spec = ConvSpec::new_3d(c, 4, depth + 1, k, 3, 1, 1);
        let op = blocked_conv3d(&spec, 16, 4, DType::U8, DType::I8);
        let kernel = Tensorizer::new(Target::x86_avx512_vnni())
            .with_tuning(TuningConfig {
                cpu: CpuTuneMode::Tuned { max_pairs: 2 },
                gpu: GpuTuneMode::Tuned,
            })
            .compile(&op)
            .expect("blocked conv3d compiles");
        let mut bufs = alloc_buffers(&kernel.func);
        random_fill(&mut bufs, seed);
        let mut reference = bufs.clone();
        run(&kernel.func, &mut bufs).expect("interprets");
        run_reference(&op, &mut reference).expect("reference");
        prop_assert_eq!(&bufs[op.output.0 as usize], &reference[op.output.0 as usize]);
    }
}

/// Concurrency stress: 8 threads hammer one shared `UnitProvider` with an
/// overlapping workload mix spanning every `OpSpec` family (dense conv,
/// depthwise, grouped conv, GEMM, batched matmul). Every thread must
/// observe exactly the value the serial path computes, and the sharded
/// cache must end with exactly one entry per unique workload (no
/// duplicates, no torn values, no cross-key poisoning).
#[test]
fn shared_provider_survives_8_thread_hammering() {
    use std::sync::Arc;
    use unit_graph::compile::{ConvProvider, UnitProvider};

    let specs: Vec<OpSpec> = vec![
        OpSpec::conv2d(8, 10, 16, 3, 1, 1),
        OpSpec::conv2d(16, 8, 32, 1, 1, 0),
        OpSpec::conv2d(32, 7, 16, 3, 1, 1),
        OpSpec::conv2d(8, 14, 8, 1, 2, 0),
        OpSpec::depthwise(16, 8, 3, 1, 1),
        OpSpec::grouped(16, 8, 16, 3, 1, 1, 2),
        OpSpec::gemm(16, 16, 32),
        OpSpec::batched_gemm(4, 8, 16, 16),
        OpSpec::conv2d(24, 6, 24, 3, 1, 1),
    ];
    let tuning = TuningConfig {
        cpu: CpuTuneMode::ParallelUnroll,
        gpu: GpuTuneMode::Generic,
    };

    // Serial oracle: a fresh provider, one thread.
    let oracle = UnitProvider::new(Target::x86_avx512_vnni(), tuning);
    let expected: Vec<(f64, String)> = specs.iter().map(|s| oracle.op_micros(s)).collect();

    let shared = Arc::new(UnitProvider::new(Target::x86_avx512_vnni(), tuning));
    std::thread::scope(|scope| {
        for t in 0..8 {
            let shared = Arc::clone(&shared);
            let specs = &specs;
            let expected = &expected;
            scope.spawn(move || {
                // Different threads start at different offsets so cache
                // fills and hits interleave.
                for i in 0..specs.len() {
                    let idx = (i + t) % specs.len();
                    let got = shared.op_micros(&specs[idx]);
                    assert_eq!(
                        got, expected[idx],
                        "thread {t} observed a torn value for spec {idx}"
                    );
                }
            });
        }
    });
    assert_eq!(
        shared.cache().len(),
        specs.len(),
        "cache must hold exactly one entry per unique workload"
    );
}
