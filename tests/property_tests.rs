//! Property-based tests on the pipeline's core invariants.

use proptest::prelude::*;
use unit::dsl::builder::matmul_u8i8;
use unit::dsl::DType;
use unit::interp::{alloc_buffers, random_fill, run, run_reference};
use unit::pipeline::{Target, Tensorizer, TuningConfig};
use unit_core::tuner::{CpuTuneMode, GpuTuneMode};
use unit_graph::layout::blocked_conv2d;
use unit_graph::ConvSpec;
use unit_tir::{lower::lower, Schedule};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any matmul whose dimensions tile a VNNI encoding compiles and
    /// computes exactly the reference result, for arbitrary tuning pairs.
    #[test]
    fn tensorized_matmul_always_matches_reference(
        n in 1i64..5, m in 1i64..5, k in 1i64..5,
        par in prop::sample::select(vec![500i64, 1500, 3000, 6000]),
        unroll in prop::sample::select(vec![1i64, 2, 4, 8, 16]),
        seed in 0u64..1000,
    ) {
        let op = matmul_u8i8(n * 8, m * 8, k * 4);
        let tuning = TuningConfig {
            cpu: CpuTuneMode::Fixed { par, unroll },
            gpu: GpuTuneMode::Tuned,
        };
        let kernel = Tensorizer::new(Target::x86_avx512_vnni())
            .with_tuning(tuning)
            .compile(&op)
            .expect("tileable matmul compiles");
        let mut bufs = alloc_buffers(&kernel.func);
        random_fill(&mut bufs, seed);
        let mut reference = bufs.clone();
        run(&kernel.func, &mut bufs).expect("interprets");
        run_reference(&op, &mut reference).expect("reference");
        prop_assert_eq!(&bufs[op.output.0 as usize], &reference[op.output.0 as usize]);
    }

    /// Random schedule transformations (split/reorder/annotate) never
    /// change what a kernel computes.
    #[test]
    fn random_schedules_preserve_semantics(
        split_axis in 0usize..3,
        factor in prop::sample::select(vec![2i64, 3, 4, 5, 7]),
        swap in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let op = matmul_u8i8(12, 10, 21);
        let mut s = Schedule::new(&op);
        let leaves = s.leaves();
        let target = leaves[split_axis];
        let (o, i) = s.split(target, factor).expect("leaf split");
        if swap {
            s.reorder(&[i, o]).expect("reorder");
        }
        let func = lower(&s, "mm_random").expect("lowers");
        let mut bufs = alloc_buffers(&func);
        random_fill(&mut bufs, seed);
        let mut reference = bufs.clone();
        run(&func, &mut bufs).expect("interprets");
        run_reference(&op, &mut reference).expect("reference");
        prop_assert_eq!(&bufs[2], &reference[2]);
    }

    /// Channel padding in the blocked layout never changes the math: the
    /// padded regions are zero and contribute nothing to the dot products.
    #[test]
    fn channel_padding_is_sound(
        c in 1i64..20, k in 1i64..20, seed in 0u64..100,
    ) {
        let spec = ConvSpec::new_2d(c, 6, k, 3, 1, 1);
        let op = blocked_conv2d(&spec, 16, 4, DType::U8, DType::I8);
        let kernel = Tensorizer::new(Target::x86_avx512_vnni())
            .compile(&op)
            .expect("padded conv compiles");
        let mut bufs = alloc_buffers(&kernel.func);
        random_fill(&mut bufs, seed);
        let mut reference = bufs.clone();
        run(&kernel.func, &mut bufs).expect("interprets");
        run_reference(&op, &mut reference).expect("reference");
        prop_assert_eq!(&bufs[op.output.0 as usize], &reference[op.output.0 as usize]);
    }
}
