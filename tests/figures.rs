//! Shape assertions for every regenerated figure: who wins, by roughly
//! what factor, and where the crossovers fall — the reproduction contract
//! stated in `EXPERIMENTS.md`.
//!
//! These re-run the full harness, so they are the slowest tests in the
//! workspace; each figure is a separate test so they parallelize.

use unit_bench::figures;
use unit_bench::geomean;

#[test]
fn fig01_naive_mixed_precision_is_a_slowdown() {
    let f = figures::fig01();
    assert_eq!(f.rows.len(), 9);
    // Every model: fp16 without Tensor Cores must NOT beat fp32.
    for row in &f.rows {
        assert!(
            row.values[1] <= 1.02,
            "{}: fp16-no-TC should not beat fp32 (got {:.2})",
            row.label,
            row.values[1]
        );
    }
    // Geomean clearly below 1 (the paper reports ~0.76).
    assert!(
        f.geomean[1] < 0.95,
        "geomean {:.2} should show a clear slowdown",
        f.geomean[1]
    );
}

#[test]
fn fig08_unit_beats_both_x86_baselines() {
    let f = figures::fig08();
    let tvm = f.geomean[1];
    let unit = f.geomean[2];
    assert!(
        unit > 1.05,
        "UNIT must beat MXNet+oneDNN (geomean {unit:.2})"
    );
    assert!(unit > tvm, "UNIT ({unit:.2}) must beat TVM ({tvm:.2})");
    assert!(
        unit < 2.0,
        "the win must stay plausible (geomean {unit:.2})"
    );
    // Mobilenets gain least: depthwise layers cannot tensorize.
    let mob: Vec<f64> = f
        .rows
        .iter()
        .filter(|r| r.label.starts_with("mobilenet"))
        .map(|r| r.values[2])
        .collect();
    let dense_models: Vec<f64> = f
        .rows
        .iter()
        .filter(|r| r.label.starts_with("resnet"))
        .map(|r| r.values[2])
        .collect();
    assert!(
        geomean(&mob) < geomean(&dense_models),
        "depthwise-heavy models must gain less from tensorization"
    );
}

#[test]
fn fig09_unit_beats_cudnn_on_every_model() {
    let f = figures::fig09();
    for row in &f.rows {
        assert!(
            row.values[1] > 1.0,
            "{}: UNIT must beat cuDNN-TC (got {:.2})",
            row.label,
            row.values[1]
        );
    }
    let g = f.geomean[1];
    assert!(
        (1.3..=2.4).contains(&g),
        "geomean {g:.2} should land near the paper's 1.75x"
    );
}

#[test]
fn fig10_stages_order_correctly() {
    let f = figures::fig10();
    // Parallel-only loses to oneDNN; +Unroll recovers most of it; +Tune
    // dominates both and beats oneDNN in geomean.
    let (par, unr, tune) = (f.geomean[1], f.geomean[2], f.geomean[3]);
    assert!(par < 1.0, "Parallel-only should lose to oneDNN ({par:.2})");
    assert!(
        unr > par,
        "+Unroll ({unr:.2}) must improve on Parallel ({par:.2})"
    );
    assert!(
        tune >= unr,
        "+Tune ({tune:.2}) must dominate +Unroll ({unr:.2})"
    );
    assert!(tune > 1.0, "+Tune must beat oneDNN in geomean ({tune:.2})");
    // Per-row: +Tune never loses to +Unroll (superset search space).
    for row in &f.rows {
        assert!(
            row.values[3] >= row.values[2] * 0.999,
            "{}: tuning regressed ({:.2} -> {:.2})",
            row.label,
            row.values[2],
            row.values[3]
        );
    }
}

#[test]
fn fig10_most_kernels_tune_quickly() {
    // Section VI-B: >50% of kernels are optimal at the first pair and
    // >95% within the first 8 pairs.
    let found_at = figures::candidates_to_optimum();
    let first = found_at.iter().filter(|n| **n == 1).count();
    let within8 = found_at.iter().filter(|n| **n <= 8).count();
    assert!(
        first * 2 >= found_at.len(),
        "at least half the kernels should be optimal at the default pair, got {first}/16"
    );
    assert!(
        within8 * 100 >= found_at.len() * 85,
        "most kernels should be optimal within 8 pairs, got {within8}/16"
    );
}

#[test]
fn fig11_splitk_is_the_big_gpu_lever() {
    let f = figures::fig11();
    let (generic, fuse, split, tune) = (f.geomean[1], f.geomean[2], f.geomean[3], f.geomean[4]);
    // Generic is roughly at cuDNN's level; split-K provides the main gain;
    // +Tune dominates every fixed stage.
    assert!(
        (0.8..=1.3).contains(&generic),
        "Generic should be near cuDNN ({generic:.2})"
    );
    assert!(
        split > generic,
        "+SplitK ({split:.2}) must beat Generic ({generic:.2})"
    );
    assert!(
        tune >= split.max(fuse),
        "+Tune must dominate the fixed stages"
    );
    assert!(tune > 1.05, "+Tune must beat cuDNN in geomean ({tune:.2})");
}

#[test]
fn fig12_arm_ordering_and_magnitudes() {
    let f = figures::fig12();
    let (manual, unit) = (f.geomean[1], f.geomean[2]);
    assert!(
        manual > 1.5,
        "DOT must crush the NEON baseline ({manual:.2})"
    );
    assert!(
        unit >= manual,
        "UNIT ({unit:.2}) must beat the manual schedule ({manual:.2})"
    );
    let ratio = unit / manual;
    assert!(
        (1.0..=1.5).contains(&ratio),
        "UNIT-over-manual ratio {ratio:.2} should be near the paper's 1.13x"
    );
}

#[test]
fn fig13_conv3d_extends_without_changes() {
    let f = figures::fig13();
    assert_eq!(f.rows.len(), 11, "Figure 13 plots layers 0..10");
    let g = f.geomean[1];
    assert!(
        (1.0..=1.6).contains(&g),
        "conv3d geomean {g:.2} should land near the paper's 1.2x"
    );
}
