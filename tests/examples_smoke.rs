//! Smoke test: all four examples run to completion.
//!
//! Each example is executed through `cargo run --example` (the same
//! entry point a user would type), so this also guards the example
//! registration in the manifest. The examples share the workspace's
//! `target/` directory with the test build, so the extra compile cost
//! is a no-op cache hit in CI.

use std::process::Command;

fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--example", name])
        .current_dir(manifest_dir)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_runs_to_completion() {
    run_example("quickstart");
}

#[test]
fn new_instruction_runs_to_completion() {
    run_example("new_instruction");
}

#[test]
fn cross_platform_runs_to_completion() {
    run_example("cross_platform");
}

#[test]
fn model_inference_runs_to_completion() {
    run_example("model_inference");
}
