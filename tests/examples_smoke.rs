//! Smoke test: all five examples run to completion.
//!
//! Each example is executed through `cargo run --example` (the same
//! entry point a user would type), so this also guards the example
//! registration in the manifest. The examples share the workspace's
//! `target/` directory with the test build, so the extra compile cost
//! is a no-op cache hit in CI.

use std::process::Command;

fn run_example(name: &str) {
    run_example_with_env(name, &[]);
}

fn run_example_with_env(name: &str, envs: &[(&str, &str)]) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let mut cmd = Command::new(cargo);
    cmd.args(["run", "--quiet", "--example", name])
        .current_dir(manifest_dir);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let output = cmd
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_runs_to_completion() {
    run_example("quickstart");
}

#[test]
fn new_instruction_runs_to_completion() {
    run_example("new_instruction");
}

#[test]
fn cross_platform_runs_to_completion() {
    run_example("cross_platform");
}

#[test]
fn model_inference_runs_to_completion() {
    run_example("model_inference");
}

#[test]
fn serve_runs_to_completion() {
    // Smoke mode: fewer requests; every correctness assertion (zero
    // warm-start tuner searches, all responses delivered) still runs.
    run_example_with_env("serve", &[("UNIT_SERVE_SMOKE", "1")]);
}
