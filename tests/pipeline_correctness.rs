//! Cross-crate correctness: every kernel the pipeline emits must compute
//! exactly what the naive reference computes, across operations,
//! instructions, platforms and tuning modes.

use unit::dsl::builder::{conv2d_hwc, matmul_f16, matmul_u8i8};
use unit::dsl::{ComputeOp, DType, InitExpr, OpBuilder};
use unit::interp::{alloc_buffers, random_fill, run, run_reference};
use unit::pipeline::{Target, Tensorizer, TuningConfig};
use unit_core::tuner::{CpuTuneMode, GpuTuneMode};
use unit_graph::layout::{blocked_conv2d, blocked_conv3d, blocked_dense};
use unit_graph::ConvSpec;

fn assert_kernel_correct(op: &ComputeOp, target: Target, tuning: TuningConfig, seed: u64) {
    let kernel = Tensorizer::new(target)
        .with_tuning(tuning)
        .compile(op)
        .unwrap_or_else(|e| {
            panic!("{} must compile: {e}", op.name);
        });
    let mut bufs = alloc_buffers(&kernel.func);
    random_fill(&mut bufs, seed);
    let mut reference = bufs.clone();
    run(&kernel.func, &mut bufs).expect("interpretation succeeds");
    run_reference(op, &mut reference).expect("reference succeeds");
    assert_eq!(
        bufs[op.output.0 as usize], reference[op.output.0 as usize],
        "kernel {} ({}) diverges from the reference",
        op.name, kernel.intrinsic.name
    );
}

#[test]
fn vnni_matmul_is_correct_under_every_tuning_mode() {
    let op = matmul_u8i8(24, 32, 64);
    for (i, mode) in [
        CpuTuneMode::ParallelOnly,
        CpuTuneMode::ParallelUnroll,
        CpuTuneMode::Tuned { max_pairs: 8 },
        CpuTuneMode::Fixed {
            par: 500,
            unroll: 4,
        },
    ]
    .into_iter()
    .enumerate()
    {
        assert_kernel_correct(
            &op,
            Target::x86_avx512_vnni(),
            TuningConfig {
                cpu: mode,
                gpu: GpuTuneMode::Tuned,
            },
            1000 + i as u64,
        );
    }
}

#[test]
fn blocked_conv2d_correct_on_x86_and_arm() {
    let spec = ConvSpec::new_2d(8, 8, 16, 3, 1, 1);
    let op_x86 = blocked_conv2d(&spec, 16, 4, DType::U8, DType::I8);
    assert_kernel_correct(
        &op_x86,
        Target::x86_avx512_vnni(),
        TuningConfig::default(),
        11,
    );
    let op_arm = blocked_conv2d(&spec, 4, 4, DType::I8, DType::I8);
    assert_kernel_correct(&op_arm, Target::arm_neon_dot(), TuningConfig::default(), 12);
}

#[test]
fn strided_and_rectangular_convs_are_correct() {
    // Stride-2 (Table I #1-style, shrunk) and a 1x7-equivalent 1x3 layer.
    let strided = ConvSpec::new_2d(8, 11, 16, 3, 2, 0);
    let op = blocked_conv2d(&strided, 16, 4, DType::U8, DType::I8);
    assert_kernel_correct(&op, Target::x86_avx512_vnni(), TuningConfig::default(), 21);

    let rect = ConvSpec::new_rect(8, 9, 16, (1, 3), 1, (0, 1));
    let op = blocked_conv2d(&rect, 16, 4, DType::U8, DType::I8);
    assert_kernel_correct(&op, Target::x86_avx512_vnni(), TuningConfig::default(), 22);
}

#[test]
fn conv3d_is_correct_without_pipeline_changes() {
    // The Figure 13 extensibility claim, verified functionally.
    let spec = ConvSpec::new_3d(8, 6, 4, 16, 3, 1, 1);
    let op = blocked_conv3d(&spec, 16, 4, DType::U8, DType::I8);
    assert_kernel_correct(&op, Target::x86_avx512_vnni(), TuningConfig::default(), 31);
}

#[test]
fn dense_layers_are_correct() {
    let op = blocked_dense(96, 40, 16, 4, DType::U8, DType::I8);
    assert_kernel_correct(&op, Target::x86_avx512_vnni(), TuningConfig::default(), 41);
}

#[test]
fn wmma_matmul_is_correct_on_the_gpu_target() {
    let op = matmul_f16(32, 48, 32);
    assert_kernel_correct(
        &op,
        Target::nvidia_tensor_core(),
        TuningConfig::default(),
        51,
    );
}

#[test]
fn narrow_encodings_cover_small_channel_counts() {
    // 8 output channels: only the 256-bit VNNI encoding applies.
    let op = matmul_u8i8(24, 8, 32);
    let k = Tensorizer::new(Target::x86_avx512_vnni())
        .compile(&op)
        .expect("compiles");
    assert_eq!(k.intrinsic.name, "llvm.x86.avx512.vpdpbusd.256");
    assert_kernel_correct(&op, Target::x86_avx512_vnni(), TuningConfig::default(), 61);
}

#[test]
fn conv_with_hwc_layout_matches_figure_5_mapping() {
    let op = conv2d_hwc(10, 10, 16, 32, 3, 3);
    let k = Tensorizer::new(Target::x86_avx512_vnni())
        .compile(&op)
        .expect("compiles");
    // The only feasible mapping is k -> lanes, rc -> reduction (Figure 5).
    let names: Vec<String> = k
        .mapping
        .iter()
        .map(|(a, _)| op.axis(*a).expect("axis").name.clone())
        .collect();
    assert_eq!(names, vec!["k", "rc"]);
    assert_kernel_correct(&op, Target::x86_avx512_vnni(), TuningConfig::default(), 71);
}

#[test]
fn in_place_accumulation_seeds_from_existing_output() {
    // Tensor-Core-style += with a nonzero initial accumulator.
    let mut op = matmul_f16(16, 16, 16);
    op.init = InitExpr::InPlace;
    let kernel = Tensorizer::new(Target::nvidia_tensor_core())
        .compile(&op)
        .expect("compiles");
    let mut bufs = alloc_buffers(&kernel.func);
    random_fill(&mut bufs, 81);
    let mut reference = bufs.clone();
    run(&kernel.func, &mut bufs).expect("runs");
    run_reference(&op, &mut reference).expect("reference");
    assert_eq!(bufs[op.output.0 as usize], reference[op.output.0 as usize]);
}

#[test]
fn runtime_registered_instructions_compile_and_emulate() {
    // A custom 2-lane, width-2 dot instruction.
    let mut b = OpBuilder::new("custom.dot.v2");
    let a = b.tensor("a", &[4], DType::I8);
    let w = b.tensor("b", &[4], DType::I8);
    let c = b.tensor("c", &[2], DType::I32);
    let i = b.axis("i", 2);
    let j = b.reduce_axis("j", 2);
    let elem = b.load(a, vec![(i * 2 + j)]).cast(DType::I32)
        * b.load(w, vec![(i * 2 + j)]).cast(DType::I32);
    let semantics = b.compute(
        "d",
        DType::I32,
        vec![i.into()],
        InitExpr::load(c, vec![i.into()]),
        elem,
    );
    let intrin = unit::isa::TensorIntrinsic {
        name: "custom.dot.v2".to_string(),
        target: "arm-neon-dot".to_string(),
        semantics,
        perf: unit::isa::PerfAttrs {
            latency_cycles: 3.0,
            throughput_ipc: 1.0,
            macs: 4,
            uops: 1,
        },
    };
    unit::isa::registry::register(intrin.clone()).expect("valid descriptor");
    assert!(unit::isa::registry::by_name("custom.dot.v2").is_some());

    // Map it manually (the platform registry prefers the wider sdot).
    let mut mb = OpBuilder::new("mm_tiny");
    let ma = mb.tensor("a", &[4, 4], DType::I8);
    let mw = mb.tensor("b", &[4, 4], DType::I8);
    let mi = mb.axis("i", 4);
    let mj = mb.axis("j", 4);
    let mk = mb.reduce_axis("k", 4);
    let me = mb.load(ma, vec![mi.into(), mk.into()]).cast(DType::I32)
        * mb.load(mw, vec![mj.into(), mk.into()]).cast(DType::I32);
    let op = mb.compute(
        "d",
        DType::I32,
        vec![mi.into(), mj.into()],
        InitExpr::Identity,
        me,
    );
    let m = unit_core::inspector::inspect(&intrin, &op).expect("applies");
    let ts = unit_core::rewriter::build_tensorized_schedule(&op, &m, &intrin).expect("schedules");
    let func = unit_core::rewriter::finalize(&ts, "mm_custom").expect("tensorizes");
    let mut bufs = alloc_buffers(&func);
    random_fill(&mut bufs, 91);
    let mut reference = bufs.clone();
    run(&func, &mut bufs).expect("emulates the custom instruction");
    run_reference(&op, &mut reference).expect("reference");
    assert_eq!(bufs[op.output.0 as usize], reference[op.output.0 as usize]);
}
