//! Offline stub of `serde_derive`.
//!
//! The container has no crates.io access, and this workspace only uses
//! serde through `#[derive(Serialize, Deserialize)]` markers (no
//! serialization is ever performed — there is no `serde_json`/`bincode`
//! consumer). The derives therefore expand to nothing; swapping in the
//! real serde later requires no source changes.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
