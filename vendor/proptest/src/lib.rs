//! Offline stub of `proptest`.
//!
//! The container has no crates.io access, so this vendors the slice of
//! proptest used by `tests/property_tests.rs`: the `proptest!` macro,
//! `ProptestConfig::with_cases`, range / `prop::sample::select` /
//! `any::<bool>()` strategies, and `prop_assert_eq!`. Cases are drawn
//! deterministically (SplitMix64 seeded per test from the test name), so
//! failures reproduce run-to-run. There is no shrinking — a failing case
//! panics via `assert_eq!` with the drawn values visible in the message.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Subset of `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A source of random draws handed to strategies. Wraps the vendored
/// SplitMix64 `StdRng`.
pub struct TestRng(StdRng);

impl TestRng {
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: each test gets its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(StdRng::seed_from_u64(h))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Subset of `proptest::strategy::Strategy`: something that can draw a
/// value. (Real proptest separates strategy from value-tree/shrinking;
/// the stub only ever needs sampling.)
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Strategy produced by [`prop::sample::select`].
pub struct Select<T: Clone>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "select() needs a non-empty vec");
        let idx = rng.0.gen_range(0..self.0.len());
        self.0[idx].clone()
    }
}

/// Strategy produced by [`sample::small_in`]: draws two uniform samples
/// from the range and keeps the smaller, so drawn values skew toward the
/// lower bound. The stub has no shrinking machinery; biasing shape-like
/// parameters small is its stand-in — a failing case is already close to
/// minimal, and the failure message prints the exact inputs.
pub struct SmallIn<T>(std::ops::Range<T>);

macro_rules! small_in_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for SmallIn<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let a = rng.0.gen_range(self.0.clone());
                let b = rng.0.gen_range(self.0.clone());
                a.min(b)
            }
        }
    )*};
}

small_in_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Subset of `proptest::prelude::any`.
#[must_use]
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod sample {
    use super::{Select, SmallIn};

    /// Subset of `proptest::sample::select` (the `Vec` overload).
    #[must_use]
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }

    /// Stub extension: a range strategy biased toward its lower bound,
    /// for shape parameters whose failures should reproduce small (the
    /// shrinking-friendly generator the GEMM property tests use).
    #[must_use]
    pub fn small_in<T>(range: std::ops::Range<T>) -> SmallIn<T> {
        SmallIn(range)
    }
}

/// Mirrors `proptest::prelude::prop`.
pub mod prop {
    pub mod sample {
        pub use crate::sample::{select, small_in};
    }
}

pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Stub of `prop_assert!`: panics (via `assert!`) instead of returning
/// `Err`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Stub of `prop_assert_eq!`: panics (via `assert_eq!`) instead of
/// returning `Err` — the stub has no shrinking machinery to hand a
/// failure back to.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Stub of the `proptest!` macro: expands each property into a plain
/// `#[test]` that draws `config.cases` deterministic samples per
/// parameter and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::sample(&($strat), &mut rng);
                    )+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || $body,
                    ));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest stub: {} failed at case {} with inputs: {}",
                            stringify!($name),
                            case,
                            [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", "),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(
            n in 1i64..5,
            pick in prop::sample::select(vec![10i64, 20, 30]),
            flag in any::<bool>(),
            idx in 0usize..3,
            small in prop::sample::small_in(1i64..100),
        ) {
            assert!((1..5).contains(&n));
            assert!([10, 20, 30].contains(&pick));
            let _drawn: bool = flag;
            assert!(idx < 3);
            assert!((1..100).contains(&small));
        }
    }

    #[test]
    fn small_in_biases_toward_the_lower_bound() {
        let mut rng = crate::TestRng::from_name("bias");
        let strat = crate::sample::small_in(0i64..100);
        let uniform = 0i64..100;
        let n = 400;
        let small_sum: i64 = (0..n)
            .map(|_| crate::Strategy::sample(&strat, &mut rng))
            .sum();
        let uniform_sum: i64 = (0..n)
            .map(|_| crate::Strategy::sample(&uniform, &mut rng))
            .sum();
        assert!(
            small_sum < uniform_sum,
            "min-of-two draws must average below uniform ({small_sum} vs {uniform_sum})"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
