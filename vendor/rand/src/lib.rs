//! Offline stub of the `rand` crate.
//!
//! The container has no crates.io access, so this workspace vendors the
//! tiny slice of the rand 0.8 API it actually uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over integer and
//! float ranges. The generator is SplitMix64 — deterministic, seedable,
//! and statistically far better than the test suites here need. It is
//! **not** the same stream as the real `StdRng` (ChaCha12), which is fine:
//! every consumer in this workspace seeds explicitly and only compares
//! interpreter output against a reference fed the *same* buffers.

use std::ops::{Range, RangeInclusive};

/// Core random source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring the subset of `rand::Rng` used here.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to draw a uniform sample from an RNG.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // 53 random bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..=1_000_000i64), b.gen_range(0..=1_000_000i64));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-128..=127i64);
            assert!((-128..=127).contains(&v));
            let w = rng.gen_range(5..9usize);
            assert!((5..9).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&v));
        }
    }

    #[test]
    fn covers_full_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all buckets of 0..10 should be hit"
        );
    }
}
