//! Offline stub of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (trait + derive macro)
//! that the workspace's `#[derive(...)]` markers and `use serde::...`
//! imports resolve against. No actual serialization machinery exists —
//! nothing in the workspace serializes, it only tags types for a future
//! wire format. The derive macros (from the sibling `serde_derive` stub)
//! expand to nothing, so the traits below are intentionally never
//! implemented by derived types.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
