//! Offline stub of `criterion`.
//!
//! The container has no crates.io access, so this vendors the minimal
//! API surface the workspace's benches use: `Criterion::bench_function`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//! Timing is plain wall-clock over `sample_size` batches with a short
//! warm-up; results print as `name  median_per_iter` lines. It is a
//! smoke-quality harness, not a statistics engine — good enough to run
//! `cargo bench` offline and to keep the bench targets compiling.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-value helper re-exported for API compatibility.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Minimal stand-in for `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up pass (also calibrates iterations per sample).
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        // Aim for ~2ms per sample, capped to keep benches fast offline.
        let iters = (Duration::from_millis(2).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000);

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters as u64,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed / iters as u32);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "{name:<50} {median:>12.2?}/iter ({} samples)",
            self.sample_size
        );
        self
    }
}

/// Minimal stand-in for `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Mirrors `criterion::criterion_group!` (both the struct-ish and the
/// plain positional form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u32;
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("stub/self_test", |b| {
            calls += 1;
            b.iter(|| 1 + 1);
        });
        // warm-up + 3 samples
        assert_eq!(calls, 4);
    }

    criterion_group!(positional_form, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("stub/noop", |b| b.iter(|| ()));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        positional_form();
    }
}
