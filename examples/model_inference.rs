//! End-to-end model compilation: quantized resnet-18 at batch 1 on the
//! Cascade Lake VNNI target with per-layer latency attribution (the
//! workflow behind Figure 8), followed by the GEMM-built transformer
//! encoder block on all three platforms — the same pipeline, a workload
//! family the paper's CNN zoo never touches.
//!
//! Run with `cargo run --release --example model_inference`.

use unit::graph::compile::{e2e_latency, UnitProvider};
use unit::graph::models::{resnet, transformer_tiny, ResnetDepth};
use unit::pipeline::{Target, TuningConfig};

fn main() {
    let graph = resnet(ResnetDepth::R18);
    println!(
        "model {}: {} nodes, {} convolutions, {:.2} GMACs",
        graph.name,
        graph.nodes.len(),
        graph.conv_workloads().len(),
        graph.total_macs() as f64 / 1e9
    );

    let provider = UnitProvider::new(Target::x86_avx512_vnni(), TuningConfig::default());
    let report = e2e_latency(&graph, &provider);

    println!(
        "\nend-to-end latency: {:.3} ms ({} launched kernels)\n",
        report.total_ms,
        report.layers.len()
    );
    let mut layers = report.layers.clone();
    layers.sort_by(|a, b| b.micros.total_cmp(&a.micros));
    println!("top-8 layers by latency:");
    for l in layers.iter().take(8) {
        println!("  {:>9.1} us  {:<24} {}", l.micros, l.name, l.note);
    }

    let tensorized = report
        .layers
        .iter()
        .filter(|l| l.note.contains("vpdpbusd"))
        .count();
    let fallback = report
        .layers
        .iter()
        .filter(|l| l.note.contains("fallback"))
        .count();
    println!(
        "\n{} kernels tensorized with VNNI, {} on the SIMD fallback path",
        tensorized, fallback
    );

    // The operator-generic layer: a transformer encoder block built
    // entirely from GEMM nodes compiles through the identical pipeline on
    // every platform.
    let tf = transformer_tiny();
    println!(
        "\nmodel {}: {} nodes, {} GEMM workloads, {:.1} MMACs",
        tf.name,
        tf.nodes.len(),
        tf.op_workloads().len(),
        tf.total_macs() as f64 / 1e6
    );
    for (target, label) in [
        (Target::x86_avx512_vnni(), "x86 VNNI"),
        (Target::arm_neon_dot(), "ARM DOT"),
        (Target::nvidia_tensor_core(), "NVIDIA Tensor Core"),
    ] {
        let provider = UnitProvider::new(target, TuningConfig::default());
        let report = e2e_latency(&tf, &provider);
        let slowest = report
            .layers
            .iter()
            .max_by(|a, b| a.micros.total_cmp(&b.micros))
            .expect("the block has layers");
        println!(
            "  {:<19} {:>8.1} us end-to-end; slowest {} ({:.1} us, {})",
            label,
            report.total_us(),
            slowest.name,
            slowest.micros,
            slowest.note
        );
    }
}
