//! Extensibility (Section VI-C): integrating a brand-new tensorized
//! instruction — *and the hardware target that provides it* — is two data
//! descriptors. The Inspector, Rewriter and Tuner are untouched.
//!
//! We invent a hypothetical "octo-dot" instruction (8 lanes, reduction
//! width 8, i8 x i8 -> i32) for a fictional DSP, describe its semantics in
//! the tensor DSL, register a `TargetDesc` carrying the DSP's machine
//! model and blocking convention, and let the existing pipeline detect the
//! instruction, map it, tune it against the DSP's own machine model, and
//! validate every kernel against the reference by direct emulation. No
//! piggybacking on a built-in platform profile: the DSP is a first-class
//! target the moment its descriptor is registered.
//!
//! Run with `cargo run --release --example new_instruction`.

use unit::dsl::{DType, InitExpr, OpBuilder};
use unit::interp::{alloc_buffers, random_fill, run, run_reference};
use unit::isa::{CpuMachine, ExecStyle, PerfAttrs, TargetDesc, TensorIntrinsic};
use unit::pipeline::{Target, Tensorizer};
use unit_graph::layout::op_for_target;
use unit_graph::OpSpec;

const DSP_TARGET_ID: &str = "fictional-octo-dsp";

/// The DSP as data: an embedded 8-core part with one octo-dot unit per
/// core. This is everything the pipeline needs to tune for it.
fn octo_dsp_target() -> TargetDesc {
    TargetDesc {
        id: DSP_TARGET_ID.to_string(),
        display_name: "Fictional Octo DSP".to_string(),
        style: ExecStyle::Cpu {
            machine: CpuMachine {
                name: "Octo DSP (8-core embedded)".to_string(),
                cores: 8,
                freq_ghz: 1.2,
                vector_issue_ports: 1.0,
                scalar_ipc: 2.0,
                vector_fma_latency: 4.0,
                simd_bits: 128,
                loop_uop_budget: 32,
                frontend_penalty: 1.5,
                fork_join_cycles: 4_000.0,
                llc_bytes: 4 * 1024 * 1024,
                dram_gbps: 12.0,
                cacheline: 64,
            },
        },
        lanes: 8,
        reduce_width: 8,
        data_dtype: DType::I8,
        weight_dtype: DType::I8,
    }
}

fn octo_dot() -> TensorIntrinsic {
    let mut b = OpBuilder::new("dsp.octo.dot.v8i32");
    let a = b.tensor("a", &[64], DType::I8);
    let w = b.tensor("b", &[64], DType::I8);
    let c = b.tensor("c", &[8], DType::I32);
    let i = b.axis("i", 8);
    let j = b.reduce_axis("j", 8);
    let elem = b.load(a, vec![(i * 8 + j)]).cast(DType::I32)
        * b.load(w, vec![(i * 8 + j)]).cast(DType::I32);
    let semantics = b.compute(
        "d",
        DType::I32,
        vec![i.into()],
        InitExpr::load(c, vec![i.into()]),
        elem,
    );
    TensorIntrinsic {
        name: "dsp.octo.dot.v8i32".to_string(),
        target: DSP_TARGET_ID.to_string(),
        semantics,
        perf: PerfAttrs {
            latency_cycles: 6.0,
            throughput_ipc: 1.0,
            macs: 64,
            uops: 1,
        },
    }
}

/// Compile one op end to end on `target` and check it bit-exact against
/// the reference interpreter (the registered instruction emulates itself).
fn compile_and_check(op: &unit::dsl::ComputeOp, target: &Target, seed: u64) {
    let k = Tensorizer::new(target.clone())
        .compile(op)
        .unwrap_or_else(|e| panic!("{} must compile on the DSP: {e}", op.name));
    let mut bufs = alloc_buffers(&k.func);
    random_fill(&mut bufs, seed);
    let mut reference = bufs.clone();
    run(&k.func, &mut bufs).expect("the registered instruction emulates itself");
    run_reference(op, &mut reference).expect("reference");
    assert_eq!(
        bufs[op.output.0 as usize], reference[op.output.0 as usize],
        "{} diverges from the reference",
        op.name
    );
    println!(
        "  {:<38} -> {} [{}], bit-exact",
        op.name, k.intrinsic.name, k.chosen
    );
}

fn main() {
    // One target descriptor + one instruction descriptor: that is the
    // whole integration.
    unit::isa::registry::register_target(octo_dsp_target()).expect("descriptor is well-formed");
    let intrin = octo_dot();
    unit::isa::registry::register(intrin.clone()).expect("descriptor is well-formed");
    let target = Target::by_id(DSP_TARGET_ID).expect("registered targets resolve like built-ins");
    println!("new target     : {}", target.desc);
    println!("new instruction: {intrin}");

    // An i8 matmul whose dimensions tile the new instruction, compiled by
    // the *unchanged* pipeline — Inspector detection, Rewriter injection,
    // and the analytic Tuner profiling against the DSP's machine model.
    let mut b = OpBuilder::new("matmul_i8");
    let a = b.tensor("a", &[32, 64], DType::I8);
    let w = b.tensor("b", &[48, 64], DType::I8);
    let i = b.axis("i", 32);
    let j = b.axis("j", 48);
    let k = b.reduce_axis("k", 64);
    let elem = b.load(a, vec![i.into(), k.into()]).cast(DType::I32)
        * b.load(w, vec![j.into(), k.into()]).cast(DType::I32);
    let op = b.compute(
        "d",
        DType::I32,
        vec![i.into(), j.into()],
        InitExpr::Identity,
        elem,
    );
    let kernel = Tensorizer::new(target.clone())
        .compile(&op)
        .expect("octo-dot applies");
    println!(
        "\nmapping: {:?}, tuned schedule: {}, {}",
        kernel.mapping, kernel.chosen, kernel.estimate
    );
    println!(
        "\ntensorized IR:\n{}",
        unit::tir::printer::print_func(&kernel.func)
    );

    // Graph-level workloads lower through the same `op_for_target`
    // dispatch as every built-in, with blocking and dtypes taken from the
    // DSP's descriptor: a convolution and a GEMM, end to end.
    println!("graph workloads on {}:", target.desc.id);
    for (seed, spec) in [
        (41u64, OpSpec::conv2d(8, 6, 16, 3, 1, 1)),
        (42u64, OpSpec::gemm(8, 16, 32)),
    ] {
        let (op, _hint) = op_for_target(&spec, &target.desc);
        compile_and_check(&op, &target, seed);
    }
    println!("correctness: every octo-dot kernel == reference (bit-exact)");
}
