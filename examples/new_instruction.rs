//! Extensibility (Section VI-C): integrating a brand-new tensorized
//! instruction is *one descriptor* — the Inspector, Rewriter and Tuner are
//! untouched.
//!
//! We invent a hypothetical "octo-dot" instruction (8 lanes, reduction
//! width 8, i8 x i8 -> i32) for a fictional DSP, describe its semantics in
//! the tensor DSL, and let the existing pipeline detect it, map it onto a
//! matmul, and validate the rewritten kernel against the reference by
//! direct emulation.
//!
//! Run with `cargo run --release --example new_instruction`.

use unit::dsl::{DType, InitExpr, OpBuilder};
use unit::interp::{alloc_buffers, random_fill, run, run_reference};
use unit::isa::{PerfAttrs, Platform, TensorIntrinsic};
use unit::pipeline::Target;
use unit::tir::passes::tensorize::tensorize_pass;

fn octo_dot() -> TensorIntrinsic {
    let mut b = OpBuilder::new("dsp.octo.dot.v8i32");
    let a = b.tensor("a", &[64], DType::I8);
    let w = b.tensor("b", &[64], DType::I8);
    let c = b.tensor("c", &[8], DType::I32);
    let i = b.axis("i", 8);
    let j = b.reduce_axis("j", 8);
    let elem = b.load(a, vec![(i * 8 + j)]).cast(DType::I32)
        * b.load(w, vec![(i * 8 + j)]).cast(DType::I32);
    let semantics = b.compute(
        "d",
        DType::I32,
        vec![i.into()],
        InitExpr::load(c, vec![i.into()]),
        elem,
    );
    TensorIntrinsic {
        name: "dsp.octo.dot.v8i32".to_string(),
        platform: Platform::ArmDot, // piggyback on a CPU platform profile
        semantics,
        perf: PerfAttrs {
            latency_cycles: 6.0,
            throughput_ipc: 1.0,
            macs: 64,
            uops: 1,
        },
    }
}

fn main() {
    let intrin = octo_dot();
    unit::isa::registry::register(intrin.clone()).expect("descriptor is well-formed");
    println!("new instruction: {intrin}");

    // An i8 matmul whose dimensions tile the new instruction.
    let mut b = OpBuilder::new("matmul_i8");
    let a = b.tensor("a", &[32, 64], DType::I8);
    let w = b.tensor("b", &[48, 64], DType::I8);
    let i = b.axis("i", 32);
    let j = b.axis("j", 48);
    let k = b.reduce_axis("k", 64);
    let elem = b.load(a, vec![i.into(), k.into()]).cast(DType::I32)
        * b.load(w, vec![j.into(), k.into()]).cast(DType::I32);
    let op = b.compute(
        "d",
        DType::I32,
        vec![i.into(), j.into()],
        InitExpr::Identity,
        elem,
    );

    // The generic pipeline pieces, driven manually with the new descriptor
    // (the registry is a static table in this reproduction; a production
    // registry would be open).
    let m = unit::pipeline::Tensorizer::new(Target::arm_neon_dot());
    let _ = m; // the Target machinery is unchanged
    let matched = unit_core::inspector::inspect(&intrin, &op).expect("octo-dot applies");
    println!(
        "mapping: {:?} (of {} feasible alternatives)",
        matched.mapping,
        matched.alternatives.len()
    );
    let ts = unit_core::rewriter::build_tensorized_schedule(&op, &matched, &intrin)
        .expect("schedulable");
    let func = unit_tir::lower::lower(&ts.schedule, "matmul_octo").expect("lowers");
    let func = tensorize_pass(&func, &ts.request()).expect("replaces");
    println!(
        "\ntensorized IR:\n{}",
        unit::tir::printer::print_func(&func)
    );

    // Correctness through direct emulation of the new instruction's own
    // DSL semantics (the descriptor *is* its emulator).
    let mut bufs = alloc_buffers(&func);
    random_fill(&mut bufs, 4);
    let mut reference = bufs.clone();
    run(&func, &mut bufs).expect("the registered instruction emulates itself");
    run_reference(&op, &mut reference).expect("reference");
    assert_eq!(bufs[op.output.0 as usize], reference[op.output.0 as usize]);
    println!("correctness: octo-dot kernel == reference (bit-exact)");
}
