//! The serving runtime end to end: compile transformer-tiny and
//! mobilenet-v1 for **every registered target**, persist the compiled
//! artifacts, warm-start a fresh engine from the store (zero tuner
//! searches), then serve a concurrent mixed request stream across all
//! targets through the batching scheduler and print the metrics.
//!
//! Run with `cargo run --release --example serve`. Set
//! `UNIT_SERVE_SMOKE=1` (the CI smoke mode) to shrink the request count;
//! correctness assertions run in both modes.
//!
//! Model *compilation* uses the full-size models (compile time is modeled
//! estimation — cheap); request *execution* interprets every kernel
//! faithfully, so the request mix uses small conv/GEMM workloads, the
//! same trade the soak suite makes.

use std::sync::Arc;
use std::time::Instant;

use unit::graph::models::{mobilenet_v1, transformer_tiny};
use unit::graph::OpSpec;
use unit::isa::registry;
use unit::pipeline::TuningConfig;
use unit::serve::{ArtifactStore, Scheduler, SchedulerConfig, ServeEngine, ServeRequest};
use unit_core::tuner::{tuner_searches, CpuTuneMode, GpuTuneMode};

fn main() {
    let smoke = std::env::var("UNIT_SERVE_SMOKE").is_ok();
    let tuning = TuningConfig {
        cpu: CpuTuneMode::Tuned { max_pairs: 4 },
        gpu: GpuTuneMode::Tuned,
    };
    let models = [transformer_tiny(), mobilenet_v1()];
    let targets: Vec<String> = registry::targets().into_iter().map(|d| d.id).collect();
    println!(
        "serving {} models on {} targets: {}",
        models.len(),
        targets.len(),
        targets.join(", ")
    );

    // --- Phase 1: cold compile + persist. ---
    let cold = ServeEngine::new(tuning);
    let t0 = Instant::now();
    for graph in &models {
        for target in &targets {
            let report = cold.compile_model(graph, target).expect("cold compile");
            println!(
                "  cold {:<17} on {:<18} {:>9.2} ms ({} kernels)",
                graph.name,
                target,
                report.total_ms,
                report.layers.len()
            );
        }
    }
    // Execute the serving menu once cold, so its tuning decisions are
    // persisted alongside the model artifacts and the warm engine serves
    // with a 100% artifact hit rate.
    for (model, op) in serving_menu() {
        for target in &targets {
            cold.execute(model, target, op, 0).expect("cold execute");
        }
    }
    let cold_elapsed = t0.elapsed();
    let store = cold.export_artifacts();
    let path = std::env::temp_dir().join("unit-serve-example.store");
    store.save(&path).expect("save artifact store");
    println!(
        "\ncold compile: {:.2}s; persisted {} artifact entries to {}",
        cold_elapsed.as_secs_f64(),
        store.len(),
        path.display()
    );

    // --- Phase 2: warm start from disk — zero tuner searches. ---
    let warm = ServeEngine::new(tuning);
    let loaded = ArtifactStore::load(&path).expect("load artifact store");
    let restored = warm.import_artifacts(loaded);
    let searches_before = tuner_searches();
    let t1 = Instant::now();
    for graph in &models {
        for target in &targets {
            let report = warm.compile_model(graph, target).expect("warm compile");
            assert!(report.total_ms > 0.0);
        }
    }
    let warm_elapsed = t1.elapsed();
    assert_eq!(
        tuner_searches(),
        searches_before,
        "warm start must perform zero tuner searches"
    );
    println!(
        "warm compile: {:.3}s from {restored} restored entries — zero tuner searches, {:.0}x faster than cold",
        warm_elapsed.as_secs_f64(),
        cold_elapsed.as_secs_f64() / warm_elapsed.as_secs_f64().max(1e-9)
    );

    // --- Phase 3: concurrent serving across every target. ---
    let engine = Arc::new(warm);
    let scheduler = Arc::new(Scheduler::start(
        Arc::clone(&engine),
        SchedulerConfig {
            queue_capacity: 64,
            max_batch: 8,
        },
    ));
    let menu = serving_menu();
    let clients = 8;
    let per_client = if smoke { 16 } else { 64 };
    let t2 = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let scheduler = Arc::clone(&scheduler);
            let targets = &targets;
            let menu = &menu;
            scope.spawn(move || {
                for i in 0..per_client {
                    let (model, op) = &menu[(client + i) % menu.len()];
                    let target = &targets[(client * per_client + i) % targets.len()];
                    let (_, rx) = scheduler
                        .submit(ServeRequest {
                            model: (*model).to_string(),
                            target: target.clone(),
                            op: *op,
                            seed: (i % 7) as u64,
                        })
                        .expect("admission");
                    let resp = rx.recv().expect("response");
                    assert!(resp.result.is_ok(), "{:?}", resp.result);
                }
            });
        }
    });
    let served = clients * per_client;
    let elapsed = t2.elapsed();
    println!(
        "\nserved {served} requests across {} targets in {:.2}s ({:.0} req/s)\n",
        targets.len(),
        elapsed.as_secs_f64(),
        engine.metrics().throughput_rps(elapsed)
    );
    println!("{}", engine.metrics().render());
    std::fs::remove_file(&path).ok();

    let metrics = engine.metrics();
    assert_eq!(metrics.completed(), served as u64);
    assert_eq!(metrics.failed(), 0);
    assert_eq!(
        metrics.tuner_searches(),
        0,
        "warm serving must replay artifacts, never search"
    );
    println!("serving runtime OK: all responses delivered, zero failures, zero tuner searches");
}

/// The request mix served in phase 3: small workloads tagged with the
/// model whose artifact namespace they live in (the interpreter executes
/// every request faithfully, so the mix must stay interpreter-sized).
fn serving_menu() -> Vec<(&'static str, OpSpec)> {
    vec![
        ("mobilenet-v1", OpSpec::depthwise(8, 8, 3, 1, 1)),
        ("mobilenet-v1", OpSpec::conv2d(8, 5, 8, 1, 1, 0)),
        ("transformer-tiny", OpSpec::gemm(16, 16, 16)),
        ("transformer-tiny", OpSpec::batched_gemm(2, 8, 16, 16)),
    ]
}
