//! The networked serving fleet end to end: **two replicas over one
//! file-locked artifact journal**, plus the HTTP/1.1 front-end.
//!
//! * Replica A attaches an empty journal, compiles transformer-tiny and
//!   mobilenet-v1 cold for every registered target — every tuning
//!   decision is appended to the journal as it is made.
//! * Replica B attaches the *same* journal and compiles the same models
//!   with **zero tuner invocations** (asserted through the process-global
//!   tuner counters): the fleet shares tuning through the file, not
//!   through any in-process state.
//! * A then makes a *new* decision; B tails it live via `sync_journal`
//!   and replays it search-free.
//! * B serves a concurrent request stream — every response asserted
//!   bit-identical to `run_reference` — first in-process through the
//!   batching scheduler, then over a real TCP socket through the
//!   HTTP front-end.
//! * Tracing is flipped on at runtime: one whole-model request is
//!   served traced, its stage timeline fetched via `/v1/trace/<id>`,
//!   and the fleet's Chrome trace_event export pulled via
//!   `/v1/traces?export=chrome` (written to `trace_export.json` when
//!   `UNIT_SERVE_TRACE` is set — open it in Perfetto).
//! * A second, **tiered** fleet on its own journal serves a novel
//!   workload immediately at the cold tuning tier, the background
//!   re-tune worker hot-swaps the full-tier kernel in mid-traffic, and
//!   a peer replica tails the upgrade search-free — every response
//!   bit-identical across tiers.
//! * Finally the journal is compacted (generation bump + retired-target
//!   GC) and the metrics are printed.
//!
//! Run with `cargo run --release --example serve`. Set
//! `UNIT_SERVE_SMOKE=1` (the CI smoke mode) to shrink the request count;
//! correctness assertions run in both modes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use unit::graph::layout::op_for_target;
use unit::graph::models::{mobilenet_v1, transformer_tiny};
use unit::graph::OpSpec;
use unit::interp::{alloc_op_buffers, random_fill, run_reference};
use unit::isa::registry;
use unit::pipeline::TuningConfig;
use unit::serve::net::{encode_typed_buf, http_request};
use unit::serve::{
    model_graph, HttpServer, HttpServerConfig, Journal, JournalConfig, JournalRecord, Scheduler,
    SchedulerConfig, ServeEngine, ServeRequest,
};
use unit_core::tuner::{tuner_invocations, tuner_searches, CpuTuneMode, GpuTuneMode};

fn main() {
    let smoke = std::env::var("UNIT_SERVE_SMOKE").is_ok();
    let tuning = TuningConfig {
        cpu: CpuTuneMode::Tuned { max_pairs: 4 },
        gpu: GpuTuneMode::Tuned,
    };
    let models = [transformer_tiny(), mobilenet_v1()];
    let targets: Vec<String> = registry::targets().into_iter().map(|d| d.id).collect();
    let dir = std::env::temp_dir().join(format!("unit-serve-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let journal_path = dir.join("journal");
    println!(
        "fleet demo: {} models on {} targets sharing {}",
        models.len(),
        targets.len(),
        journal_path.display()
    );

    // --- Phase 1: replica A compiles cold, journaling every decision. ---
    let replica_a = ServeEngine::new(tuning);
    let journal_a =
        Arc::new(Journal::open(JournalConfig::at(&journal_path)).expect("open journal"));
    replica_a
        .attach_journal(Arc::clone(&journal_a))
        .expect("attach journal to A");
    let t0 = Instant::now();
    for graph in &models {
        for target in &targets {
            let report = replica_a
                .compile_model(graph, target)
                .expect("cold compile");
            println!(
                "  A cold {:<17} on {:<18} {:>9.2} ms ({} kernels)",
                graph.name,
                target,
                report.total_ms,
                report.layers.len()
            );
        }
    }
    // Execute the serving menu once cold so its decisions are journaled
    // alongside the model artifacts.
    for (model, op) in serving_menu() {
        for target in &targets {
            replica_a
                .execute(model, target, op, 0)
                .expect("cold execute");
        }
    }
    let cold_elapsed = t0.elapsed();
    let appended = replica_a.metrics().journal_appends();
    println!(
        "\nA: cold compile {:.2}s, {appended} decisions appended to the journal",
        cold_elapsed.as_secs_f64()
    );
    assert!(appended > 0);

    // --- Phase 2: replica B warm-starts off the journal — zero tuner
    // invocations for the same models. ---
    let replica_b = ServeEngine::new(tuning);
    let journal_b =
        Arc::new(Journal::open(JournalConfig::at(&journal_path)).expect("open journal"));
    let restored = replica_b
        .attach_journal(Arc::clone(&journal_b))
        .expect("attach journal to B");
    let invocations_before = tuner_invocations();
    let t1 = Instant::now();
    for graph in &models {
        for target in &targets {
            let report = replica_b
                .compile_model(graph, target)
                .expect("warm compile");
            assert!(report.total_ms > 0.0);
        }
    }
    let warm_elapsed = t1.elapsed();
    assert_eq!(
        tuner_invocations(),
        invocations_before,
        "B's journal-warm compiles must never invoke the tuner"
    );
    println!(
        "B: warm compile {:.3}s from {restored} journaled entries — zero tuner invocations, {:.0}x faster than cold",
        warm_elapsed.as_secs_f64(),
        cold_elapsed.as_secs_f64() / warm_elapsed.as_secs_f64().max(1e-9)
    );

    // --- Phase 3: live tailing. A tunes something new; B picks it up
    // without restarting. ---
    let live_op = OpSpec::gemm(16, 32, 16);
    let a_out = replica_a
        .execute("live", &targets[0], live_op, 11)
        .expect("A executes cold");
    let tailed = replica_b.sync_journal().expect("B tails the journal");
    let searches_before = tuner_searches();
    let b_out = replica_b
        .execute("live", &targets[0], live_op, 11)
        .expect("B replays");
    assert_eq!(
        b_out.output, a_out.output,
        "replicas must agree bit-for-bit"
    );
    assert_eq!(
        tuner_searches(),
        searches_before,
        "B replays A's decision search-free"
    );
    println!("B: tailed {tailed} live record(s) from A and replayed search-free");

    // --- Phase 4: B serves a concurrent stream; every response checked
    // bit-identical to run_reference. ---
    let engine = Arc::new(replica_b);
    let scheduler = Arc::new(Scheduler::start(
        Arc::clone(&engine),
        SchedulerConfig {
            queue_capacity: 64,
            max_batch: 8,
        },
    ));
    let menu = serving_menu();
    let clients = 8;
    let per_client = if smoke { 16 } else { 64 };
    let t2 = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let scheduler = Arc::clone(&scheduler);
            let targets = &targets;
            let menu = &menu;
            scope.spawn(move || {
                for i in 0..per_client {
                    let (model, op) = &menu[(client + i) % menu.len()];
                    let target = &targets[(client * per_client + i) % targets.len()];
                    let seed = (i % 7) as u64;
                    let (_, rx) = scheduler
                        .submit(ServeRequest {
                            model: (*model).to_string(),
                            target: target.clone(),
                            op: *op,
                            seed,
                        })
                        .expect("admission");
                    let resp = rx.recv().expect("response");
                    let out = resp.result.expect("execution succeeds");
                    assert_eq!(
                        encode_typed_buf(&out),
                        reference_encoding(target, op, seed),
                        "{} on {target} seed {seed}: diverged from run_reference",
                        op.describe()
                    );
                }
            });
        }
    });
    let served = clients * per_client;
    let elapsed = t2.elapsed();
    println!(
        "\nB served {served} in-process requests across {} targets in {:.2}s ({:.0} req/s), all bit-identical to run_reference",
        targets.len(),
        elapsed.as_secs_f64(),
        engine.metrics().throughput_rps(elapsed)
    );

    // --- Phase 5: the HTTP front-end over a real socket. ---
    let server = HttpServer::start(Arc::clone(&scheduler), HttpServerConfig::default())
        .expect("bind HTTP front-end");
    let addr = server.local_addr();
    let timeout = Duration::from_secs(30);
    let http_requests = if smoke { 8 } else { 32 };
    for i in 0..http_requests {
        let (model, op) = &menu[i % menu.len()];
        let target = &targets[i % targets.len()];
        let seed = (i % 7) as u64;
        let body = format!(
            "model {model}\ntarget {target}\nop {}\nseed {seed}\n",
            op.encode()
        );
        let (status, response) =
            http_request(addr, "POST", "/v1/execute", &body, timeout).expect("HTTP request");
        assert_eq!(status, 200, "{response}");
        let payload = response
            .split_once("dtype ")
            .map(|(_, p)| format!("dtype {p}"))
            .expect("response carries a buffer");
        assert_eq!(
            payload,
            reference_encoding(target, op, seed),
            "HTTP response diverged from run_reference"
        );
    }
    let (status, metrics_text) =
        http_request(addr, "GET", "/metrics", "", timeout).expect("GET /metrics");
    assert_eq!(status, 200);
    println!("HTTP front-end on {addr}: {http_requests} requests bit-identical over the wire\n");

    // --- Phase 5b: request-scoped tracing over the wire. Flip the
    // collector on at runtime, serve one whole model, and pull the
    // timeline plus the Chrome trace_event export back through the
    // front-end (open the export in Perfetto / chrome://tracing). ---
    engine.tracer().set_enabled(true);
    let traced_graph = if cfg!(debug_assertions) {
        "transformer-micro"
    } else {
        "transformer-tiny"
    };
    // A pays the fused whole-model search once — journaled like every
    // other decision — so B serves the traced request search-free.
    let graph_spec = model_graph(traced_graph).expect("known graph");
    replica_a
        .execute_model(&graph_spec, &targets[0], 3, true)
        .expect("A compiles the fused model");
    engine
        .sync_journal()
        .expect("B tails the fused whole-model artifacts");
    let body = format!("graph {traced_graph}\ntarget {}\nseed 3\n", &targets[0]);
    let (status, response) =
        http_request(addr, "POST", "/v1/execute", &body, timeout).expect("traced model request");
    assert_eq!(status, 200, "{response}");
    let trace_id = response
        .lines()
        .find_map(|l| l.strip_prefix("trace "))
        .expect("tracing is on: the response names its trace")
        .to_string();
    let (status, timeline) =
        http_request(addr, "GET", &format!("/v1/trace/{trace_id}"), "", timeout)
            .expect("GET /v1/trace/<id>");
    assert_eq!(status, 200, "{timeline}");
    for required in ["admission", "queue", "tape_dispatch", "epilogue", "reply"] {
        assert!(
            timeline.contains(&format!("span {required} ")),
            "timeline is missing `{required}`:\n{timeline}"
        );
    }
    let spans = timeline.lines().filter(|l| l.starts_with("span ")).count();
    let dispatches = timeline
        .lines()
        .filter(|l| l.starts_with("span tape_dispatch "))
        .count();
    assert_eq!(dispatches, 8, "one tape dispatch per transformer step");
    let (status, export) =
        http_request(addr, "GET", "/v1/traces?export=chrome", "", timeout).expect("chrome export");
    assert_eq!(status, 200);
    assert!(
        export.starts_with('{') && export.contains("\"traceEvents\""),
        "{export}"
    );
    if std::env::var("UNIT_SERVE_TRACE").is_ok() {
        std::fs::write("trace_export.json", &export).expect("write trace_export.json");
        println!("wrote trace_export.json ({} bytes)", export.len());
    }
    engine.tracer().set_enabled(false);
    println!(
        "trace OK: trace {trace_id} has {spans} spans ({dispatches} tape dispatches), chrome export {} bytes\n",
        export.len()
    );
    server.shutdown();

    // --- Phase 6: a tiered fleet on its own journal — serve cold
    // immediately, re-tune in the background, hot-swap mid-traffic, and
    // let the peer replica tail the upgrade search-free. ---
    {
        use unit::serve::{RetuneWorker, TuneTier};
        let full_tuning = TuningConfig {
            cpu: CpuTuneMode::Tuned { max_pairs: 16 },
            gpu: GpuTuneMode::Tuned,
        };
        let tiered_journal = dir.join("journal-tiered");
        let tiered_op = OpSpec::gemm(24, 16, 32);
        let tiered_target = &targets[0];
        let expected = reference_encoding(tiered_target, &tiered_op, 5);

        // Replica C answers the novel workload immediately at the cold
        // tier instead of stalling on the full search.
        let replica_c = Arc::new(ServeEngine::new(full_tuning).with_tiered_cold_start());
        let journal_c = Arc::new(
            Journal::open(JournalConfig::at(&tiered_journal)).expect("open tiered journal"),
        );
        replica_c
            .attach_journal(Arc::clone(&journal_c))
            .expect("attach journal to C");
        let t3 = Instant::now();
        let cold_out = replica_c
            .execute("live", tiered_target, tiered_op, 5)
            .expect("cold-tier execute");
        let cold_ms = t3.elapsed().as_secs_f64() * 1e3;
        assert_eq!(cold_out.tier, TuneTier::Cold);
        assert_eq!(encode_typed_buf(&cold_out.output), expected);

        // Replica D attaches while the decision is still cold-tier and
        // replays it as-is.
        let replica_d = ServeEngine::new(full_tuning).with_tiered_cold_start();
        let journal_d = Arc::new(
            Journal::open(JournalConfig::at(&tiered_journal)).expect("open tiered journal"),
        );
        replica_d
            .attach_journal(Arc::clone(&journal_d))
            .expect("attach journal to D");
        let d_cold = replica_d
            .execute("live", tiered_target, tiered_op, 5)
            .expect("D replays the cold decision");
        assert_eq!(d_cold.tier, TuneTier::Cold);

        // The background worker re-tunes at the full tier and hot-swaps
        // mid-traffic; C keeps serving throughout, bits unchanged.
        let worker = RetuneWorker::start(Arc::clone(&replica_c));
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let out = replica_c
                .execute("live", tiered_target, tiered_op, 5)
                .expect("serve during the swap");
            assert_eq!(
                encode_typed_buf(&out.output),
                expected,
                "bits changed mid-swap"
            );
            if out.tier == TuneTier::Full {
                break;
            }
            assert!(Instant::now() < deadline, "re-tune worker never swapped");
            std::thread::sleep(Duration::from_millis(5));
        }
        worker.shutdown();
        let swaps = replica_c.metrics().retune_swaps();
        assert!(swaps >= 1);

        // D tails the journaled upgrade and swaps too — search-free,
        // the peer already paid the search.
        let searches_before = tuner_searches();
        let tailed = replica_d.sync_journal().expect("D tails the upgrade");
        assert!(tailed > 0, "C's re-tune must reach D");
        assert_eq!(
            tuner_searches(),
            searches_before,
            "a peer hot-swap must be search-free"
        );
        let d_hot = replica_d
            .execute("live", tiered_target, tiered_op, 5)
            .expect("D serves full-tier");
        assert_eq!(d_hot.tier, TuneTier::Full);
        assert_eq!(encode_typed_buf(&d_hot.output), expected);
        assert!(replica_d.metrics().retune_swaps() >= 1);

        println!(
            "tiered OK: cold tier answered in {cold_ms:.2} ms, {swaps} hot swap(s) mid-traffic, peer replica swapped search-free, bits identical across tiers"
        );
    }

    // --- Phase 7: decommission a target fleet-wide, then compact: the
    // retired target's entries are GC'd and the generation bumps. ---
    let retired = targets.last().expect("at least one target");
    journal_a
        .append(&[JournalRecord::Retire {
            target: retired.clone(),
        }])
        .expect("append retire");
    let before = std::fs::metadata(&journal_path)
        .expect("journal size")
        .len();
    journal_a.compact().expect("compact");
    let after = std::fs::metadata(&journal_path)
        .expect("journal size")
        .len();
    assert!(
        after < before,
        "GC must reclaim the retired target's entries"
    );
    println!(
        "journal compacted after retiring {retired}: {before} -> {after} bytes, generation {}",
        journal_a.generation().expect("generation")
    );

    println!("{metrics_text}");
    std::fs::remove_dir_all(&dir).ok();

    let metrics = engine.metrics();
    assert!(metrics.completed() >= served as u64 + http_requests as u64);
    assert_eq!(metrics.failed(), 0);
    assert_eq!(
        metrics.tuner_searches(),
        0,
        "journal-warm serving must replay decisions, never search"
    );
    println!(
        "fleet OK: two replicas shared {appended}+ decisions through the journal, zero failures, zero warm searches"
    );
}

/// Expected output for `(target, op, seed)` straight from the reference
/// executor, encoded exactly like the serving responses.
fn reference_encoding(target: &str, op: &OpSpec, seed: u64) -> String {
    let desc = registry::target_by_id(target).expect("registered target");
    let (lowered, _) = op_for_target(op, &desc);
    let mut bufs = alloc_op_buffers(&lowered);
    random_fill(&mut bufs, seed);
    run_reference(&lowered, &mut bufs).expect("reference executes");
    encode_typed_buf(&bufs.swap_remove(lowered.output.0 as usize))
}

/// The request mix served in phases 4–5: small workloads tagged with
/// the model whose artifact namespace they live in (the interpreter
/// executes every request faithfully, so the mix must stay
/// interpreter-sized).
fn serving_menu() -> Vec<(&'static str, OpSpec)> {
    vec![
        ("mobilenet-v1", OpSpec::depthwise(8, 8, 3, 1, 1)),
        ("mobilenet-v1", OpSpec::conv2d(8, 5, 8, 1, 1, 0)),
        ("transformer-tiny", OpSpec::gemm(16, 16, 16)),
        ("transformer-tiny", OpSpec::batched_gemm(2, 8, 16, 16)),
    ]
}
