//! Quickstart: tensorize one convolution with Intel VNNI.
//!
//! This is the paper's running example (Figure 5): UNIT detects that
//! `vpdpbusd` applies to a quantized convolution, reorganizes the loops,
//! injects the instruction, tunes the remaining loops, and — in this
//! reproduction — proves the rewritten kernel bit-identical to the naive
//! reference by executing both.
//!
//! Run with `cargo run --release --example quickstart`.

use unit::dsl::builder::conv2d_hwc;
use unit::interp::{alloc_buffers, random_fill, run, run_reference};
use unit::pipeline::{Target, Tensorizer};
use unit::tir::printer::print_func;

fn main() {
    // c[x, y, k] += i32(a[x+r, y+s, rc]) * i32(b[r, s, k, rc])
    let op = conv2d_hwc(18, 18, 32, 64, 3, 3);
    println!("== Operation ==\n{}", unit::dsl::printer::print_op(&op));

    let kernel = Tensorizer::new(Target::x86_avx512_vnni())
        .compile(&op)
        .expect("VNNI applies to quantized convolution");

    println!("== UNIT selected ==");
    println!("instruction : {}", kernel.intrinsic);
    println!("mapping     : {:?}", kernel.mapping);
    println!("schedule    : {}", kernel.chosen);
    println!("estimate    : {}", kernel.estimate);
    println!();
    println!("== Tensorized tensor IR ==\n{}", print_func(&kernel.func));

    // Correctness: run the tensorized kernel and the naive reference on the
    // same random inputs.
    let mut bufs = alloc_buffers(&kernel.func);
    random_fill(&mut bufs, 2021);
    let mut reference = bufs.clone();
    run(&kernel.func, &mut bufs).expect("interpretation succeeds");
    run_reference(&op, &mut reference).expect("reference succeeds");
    assert_eq!(
        bufs[op.output.0 as usize], reference[op.output.0 as usize],
        "tensorized kernel must be bit-identical to the reference"
    );
    println!("correctness : tensorized output == naive reference (bit-exact)");
}
