//! The unified abstraction at work: the *same* matrix-multiplication
//! operation maps onto Intel VNNI, ARM DOT, and Nvidia Tensor Cores with
//! zero per-platform compiler code — only the instruction descriptors
//! differ (Section III-A of the paper).
//!
//! Run with `cargo run --release --example cross_platform`.

use unit::dsl::builder::{matmul_f16, matmul_u8i8};
use unit::dsl::{DType, InitExpr, OpBuilder};
use unit::pipeline::{Target, Tensorizer};

fn main() {
    // --- x86: u8 x i8 matmul -> vpdpbusd. ---
    let x86 = Tensorizer::new(Target::x86_avx512_vnni());
    let mm_int = matmul_u8i8(64, 128, 256);
    let k = x86.compile(&mm_int).expect("VNNI applies");
    println!("x86    : {:<45} -> {}", mm_int.name, k.intrinsic.name);
    println!("         schedule {}, {}", k.chosen, k.estimate);

    // --- ARM: i8 x i8 matmul -> sdot. ---
    let arm = Tensorizer::new(Target::arm_neon_dot());
    let mut b = OpBuilder::new("matmul_i8i8");
    let a = b.tensor("a", &[64, 256], DType::I8);
    let w = b.tensor("b", &[128, 256], DType::I8);
    let i = b.axis("i", 64);
    let j = b.axis("j", 128);
    let kk = b.reduce_axis("k", 256);
    let elem = b.load(a, vec![i.into(), kk.into()]).cast(DType::I32)
        * b.load(w, vec![j.into(), kk.into()]).cast(DType::I32);
    let mm_arm = b.compute(
        "d",
        DType::I32,
        vec![i.into(), j.into()],
        InitExpr::Identity,
        elem,
    );
    let k = arm.compile(&mm_arm).expect("DOT applies");
    println!("ARM    : {:<45} -> {}", mm_arm.name, k.intrinsic.name);
    println!("         schedule {}, {}", k.chosen, k.estimate);

    // --- GPU: fp16 matmul -> wmma. ---
    let gpu = Tensorizer::new(Target::nvidia_tensor_core());
    let mm_f16 = matmul_f16(112, 256, 1024);
    let k = gpu.compile(&mm_f16).expect("WMMA applies");
    println!("GPU    : {:<45} -> {}", mm_f16.name, k.intrinsic.name);
    println!("         config {}, {}", k.chosen, k.estimate);

    // --- And a mismatch: fp16 on the integer CPU path is rejected with
    //     one reason per instruction tried. ---
    let err = x86.compile(&mm_f16).expect_err("fp16 cannot map to VNNI");
    println!("\nRejection diagnostics (fp16 matmul on VNNI):\n{err}");

    // --- The open target model: the list above is not special. Every
    //     target in the registry — including the post-paper ARMv8.6 i8mm
    //     `smmla` and anything registered at runtime — compiles the same
    //     GEMM workload through `op_for_target`, with blocking and dtypes
    //     taken from its own descriptor. ---
    println!("\nGEMM 32x64x128 on every registered target:");
    let spec = unit::graph::OpSpec::gemm(32, 64, 128);
    for desc in unit::isa::registry::targets() {
        let (op, hint) = unit::graph::layout::op_for_target(&spec, &desc);
        let t = Tensorizer::new(unit::pipeline::Target::from_desc(desc.clone()));
        let k = t
            .compile_with_hint(&op, hint)
            .expect("a GEMM tensorizes on every registered target");
        println!("{:<20}: {:<45} -> {}", desc.id, op.name, k.intrinsic.name);
    }
}
