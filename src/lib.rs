//! # UNIT — Unifying Tensorized Instruction Compilation (Rust reproduction)
//!
//! This facade crate re-exports the whole UNIT workspace, reproducing the
//! system of *"UNIT: Unifying Tensorized Instruction Compilation"*
//! (Weng et al., CGO 2021):
//!
//! * [`dsl`] — the tensor DSL in which both tensor operations and tensorized
//!   instructions (Intel VNNI, ARM DOT, Nvidia Tensor Core) are described.
//! * [`isa`] — the instruction *and target* registries: unified semantics
//!   descriptors plus bit-accurate software emulation of every instruction,
//!   and the open target model (`TargetDesc`) — targets are data carrying
//!   their own machine model, blocking and dtypes, registrable at runtime.
//! * [`tir`] — the tensor IR: canonical loop nests, scheduling primitives
//!   (`split`/`reorder`/`fuse`/`parallel`/`unroll`/`bind`), lowering, and the
//!   tensorize-replacement pass.
//! * [`interp`] — a tensor-IR interpreter used as the functional-correctness
//!   substrate (no LLVM backend is required).
//! * [`sim`] — analytic CPU/GPU performance estimators used as the profiling
//!   substrate; the machine models they consume (Cascade Lake, Graviton2,
//!   V100, ...) travel inside each target's descriptor.
//! * [`pipeline`] — the paper's contribution: Inspector (applicability
//!   detection), Rewriter (loop reorganization + instruction injection) and
//!   Tuner (CPU/GPU schedule search).
//! * [`graph`] — a graph-level IR with quantization, layout and fusion
//!   passes, plus the nine CNN models of the evaluation.
//! * [`serve`] — the inference-serving runtime: a persistent
//!   compiled-artifact store (warm starts replay tuning decisions with
//!   zero searches), a batching scheduler sharded per target, and
//!   serving metrics with stable text rendering.
//! * [`baselines`] — simulated vendor-library comparators (oneDNN, cuDNN,
//!   TVM manual schedules, TVM-NEON).
//!
//! ## Quickstart
//!
//! ```
//! use unit::pipeline::{Tensorizer, Target};
//! use unit::dsl::builder::conv2d_hwc;
//!
//! // The paper's running example: map Intel VNNI onto a small convolution.
//! let op = conv2d_hwc(18, 18, 32, 64, 3, 3);
//! let compiled = Tensorizer::new(Target::x86_avx512_vnni())
//!     .compile(&op)
//!     .expect("VNNI applies to quantized convolution");
//! assert_eq!(compiled.intrinsic.name, "llvm.x86.avx512.vpdpbusd.512");
//! ```

pub use unit_baselines as baselines;
pub use unit_core as pipeline;
pub use unit_dsl as dsl;
pub use unit_graph as graph;
pub use unit_interp as interp;
pub use unit_isa as isa;
pub use unit_serve as serve;
pub use unit_sim as sim;
pub use unit_tir as tir;
